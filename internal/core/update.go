package core

import (
	"fmt"

	"usimrank/internal/cache"
	"usimrank/internal/matrix"
	"usimrank/internal/speedup"
	"usimrank/internal/ugraph"
)

// UpdateStats reports what one ApplyUpdates call did — most usefully,
// how much warm state survived. RowsEvicted / (RowsEvicted +
// RowsRetained) is the invalidation fraction the targeted scheme is
// designed to keep small.
type UpdateStats struct {
	// Applied is the number of distinct arcs with a net change relative
	// to the predecessor's graph; staged sequences that net out (insert
	// then delete) are not counted.
	Applied int
	// TouchedHeads is the number of distinct arc heads among the
	// updates — the seed set of the invalidation BFS.
	TouchedHeads int
	// HorizonDepth is the BFS depth the invalidation ran to: the
	// deepest cached row prefix minus one, so every cached entry is
	// either provably unaffected or evicted.
	HorizonDepth int
	// RowsEvicted and RowsRetained partition the predecessor's row
	// cache: evicted entries were within the walk horizon of a touched
	// arc, retained entries are provably bit-identical on the mutated
	// graph and carry over warm.
	RowsEvicted  int
	RowsRetained int
	// FiltersPatched reports whether the predecessor had built its
	// SR-SP filter pools (and so the successor inherited patched pools
	// instead of rebuilding lazily from scratch).
	FiltersPatched bool
	// FilterVerticesRebuilt is the number of per-vertex filter rebuilds
	// across the patched pools (0 when FiltersPatched is false).
	FilterVerticesRebuilt int
	// TouchedSources is the sorted set of source vertices whose
	// reverse-walk distribution can have changed: vertices that reach a
	// net-changed arc head within Steps−1 forward hops of the union of
	// the old and new graphs (the invalidation BFS run to the full walk
	// horizon, not just the cached-row horizon). The contract is
	// per-SIDE: a query answer is provably bit-identical across the
	// update iff every constituent source — each side of every pair the
	// shape evaluates — is outside this set. A pairwise score s(u,v)
	// needs u and v untouched; shapes that evaluate u against every
	// vertex (top-k of u, the unrestricted single-source vector) can
	// change whenever the set is non-empty, because a touched v-side
	// row moves that candidate's score even when u itself is
	// unaffected. Empty when the batch nets out to no real change — the
	// serving plane's subscription wake-up keys off this, so a no-op
	// batch must wake nobody.
	TouchedSources []int32
	// Generation is the successor engine's generation number.
	Generation uint64
}

// Generation returns the engine's graph generation: 1 for an engine
// built by NewEngine, and the predecessor's generation plus one for an
// engine derived by ApplyUpdates. Serving planes key caches and
// coalescing on it so results from different graph versions never mix.
func (e *Engine) Generation() uint64 { return e.gen }

// ApplyUpdates derives an engine for the mutated graph from the
// receiver, carrying over every piece of warm state the mutation
// provably cannot have changed. The receiver is not modified and stays
// fully usable — in-flight queries keep computing against the old
// graph, which is what lets a serving plane swap generations under
// live traffic with no torn state.
//
// Compared to NewEngine on the mutated graph (plus a filter warm-up),
// the derived engine skips almost all of the rebuild:
//
//   - the mutated CSR and its reverse are compacted incrementally from
//     the update overlay (O(|V|+|E|) copy, no re-sort);
//   - row-cache entries survive unless their source reaches a touched
//     arc head within the cached walk horizon (a bounded BFS decides);
//   - built SR-SP filter pools are patched per-vertex: only vertices
//     whose reversed out-row changed are re-sampled.
//
// Every query on the derived engine is bit-identical to the same query
// on a freshly built engine over the mutated graph with the same
// options: walk streams depend only on (seed, vertex, side), retained
// rows are prefix-stable, and patched filters reproduce the
// from-scratch build exactly. The oracle test suite pins this.
//
// An empty update batch is legal and yields a successor with all warm
// state retained (only the generation changes).
func (e *Engine) ApplyUpdates(updates []ugraph.ArcUpdate) (*Engine, *UpdateStats, error) {
	d := ugraph.NewDelta(e.g)
	if err := d.StageAll(updates); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	newG := d.Compact()
	newRev := d.Reversed(e.rev).Compact()
	heads := d.TouchedHeads()

	stats := &UpdateStats{
		Applied:      d.NetChanges(),
		TouchedHeads: len(heads),
		Generation:   e.gen + 1,
	}

	// Row-cache carry-over. A cached entry holds rows 0..D for its
	// source on the reversed graph; level k changes only if the source
	// reaches a touched head within k−1 steps of the original-direction
	// graph (old or new — the BFS walks their union so deleted paths
	// still count). Evict iff dist(src) ≤ D−1, i.e. some cached level
	// is inside the horizon.
	keys, vals := e.rows.Snapshot() // LRU → MRU order
	maxDepth := 0
	for _, rows := range vals {
		if d := len(rows) - 2; d > maxDepth {
			maxDepth = d
		}
	}
	var dist []int32
	if len(heads) > 0 && len(keys) > 0 {
		dist = ugraph.BoundedDistances(heads, maxDepth, e.g, newG)
	}

	// Touched-source set for downstream consumers (the subscription
	// plane): a second BFS seeded only by the net-changed heads, run to
	// the full walk horizon Steps−1. It is deliberately separate from
	// the eviction BFS above — eviction stays conservative over every
	// staged head (a netted-out arc costs at most a spurious eviction),
	// while wake-ups must be precise (a netted-out batch changes no
	// answer and must produce an empty set).
	if netHeads := d.NetChangedHeads(); len(netHeads) > 0 {
		horizon := e.opt.Steps - 1
		if horizon < 0 {
			horizon = 0
		}
		wdist := ugraph.BoundedDistances(netHeads, horizon, e.g, newG)
		for v, dv := range wdist {
			if dv >= 0 && int(dv) <= horizon {
				stats.TouchedSources = append(stats.TouchedSources, int32(v))
			}
		}
	}
	newRows := cache.New[int, []matrix.Vec](e.opt.RowCacheSize)
	for i, src := range keys {
		if dist != nil && dist[src] >= 0 && int(dist[src]) <= len(vals[i])-2 {
			stats.RowsEvicted++
			continue
		}
		newRows.Add(src, vals[i])
		stats.RowsRetained++
	}

	// Filter-pool carry-over: patch only if the predecessor built them;
	// otherwise the successor builds lazily on first SR-SP query, same
	// as a fresh engine. Touched vertices on the reversed graph are
	// exactly the heads: rev out-row of y holds the reversed (·, y)
	// arcs.
	e.filterMu.Lock()
	poolU, poolV := e.poolU, e.poolV
	e.filterMu.Unlock()
	var newPoolU, newPoolV *speedup.Filters
	if poolU != nil {
		newPoolU = speedup.PatchFilters(poolU, newRev, heads, e.pool)
		stats.FiltersPatched = true
		stats.FilterVerticesRebuilt = len(heads)
		if poolV == poolU {
			newPoolV = newPoolU
		} else {
			newPoolV = speedup.PatchFilters(poolV, newRev, heads, e.pool)
			stats.FilterVerticesRebuilt += len(heads)
		}
	}

	stats.HorizonDepth = maxDepth
	return &Engine{
		g:    newG,
		rev:  newRev,
		opt:  e.opt,
		pool: e.pool, // shared: old + new engines stay inside one Parallelism bound while the old drains
		rows: newRows,
		// The v2 arc-sampling plan is a pure function of the mutated
		// graph, so the successor rebuilds it lazily on first SamplingV2
		// query; the scratch pool carries over — its buffers are sized by
		// the options, not the graph.
		v2pool: e.v2pool,
		poolU:  newPoolU,
		poolV:  newPoolV,
		gen:    e.gen + 1,
	}, stats, nil
}

package core

import (
	"testing"

	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// randUGraph draws a digraph with independent arc probability p.
func randUGraph(r *rng.RNG, n int, p float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if r.Bool(p) {
				b.AddArc(u, v, 0.05+0.95*r.Float64())
			}
		}
	}
	return b.MustBuild()
}

// randomBatch stages a mixed batch of valid updates against g.
func randomBatch(r *rng.RNG, g *ugraph.Graph, count int) []ugraph.ArcUpdate {
	d := ugraph.NewDelta(g)
	var ups []ugraph.ArcUpdate
	for len(ups) < count {
		u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
		var up ugraph.ArcUpdate
		if d.Prob(u, v) > 0 {
			if r.Bool(0.5) {
				up = ugraph.ArcUpdate{Op: ugraph.OpDelete, U: u, V: v}
			} else {
				up = ugraph.ArcUpdate{Op: ugraph.OpReweight, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
			}
		} else {
			up = ugraph.ArcUpdate{Op: ugraph.OpInsert, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
		}
		if err := d.Stage(up); err != nil {
			continue
		}
		ups = append(ups, up)
	}
	return ups
}

// TestApplyUpdatesBitIdenticalToRebuild is the core invariant of the
// dynamic update plane: a derived engine answers every query with the
// same bits as a from-scratch engine over the mutated graph. (The
// oracle package extends this across all five query shapes; this is
// the fast in-package version covering the cache-retention and
// filter-patch paths directly.)
func TestApplyUpdatesBitIdenticalToRebuild(t *testing.T) {
	r := rng.New(314)
	for trial := 0; trial < 12; trial++ {
		g := randUGraph(r, 12+r.Intn(12), 0.18)
		opt := Options{Steps: 4, N: 120, L: 1, Seed: 9, Parallelism: 2, RowCacheSize: 64}
		e, err := NewEngine(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Warm every kind of derived state on the predecessor: exact
		// rows at baseline depth, two-phase depth, and the SR-SP filter
		// pools — so carry-over (not just recompute) is what's tested.
		for v := 0; v < g.NumVertices(); v += 2 {
			if _, err := e.Baseline(v, (v+3)%g.NumVertices()); err != nil {
				t.Fatal(err)
			}
			if _, err := e.SRSP(v, (v+1)%g.NumVertices()); err != nil {
				t.Fatal(err)
			}
		}

		ups := randomBatch(r, g, 1+r.Intn(4))
		derived, stats, err := e.ApplyUpdates(ups)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Generation != 2 || derived.Generation() != 2 {
			t.Fatalf("generation %d / %d, want 2", stats.Generation, derived.Generation())
		}
		if !stats.FiltersPatched {
			t.Fatal("warm filters were not patched")
		}
		rebuilt, err := NewEngine(derived.Graph(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range Algorithms() {
			for q := 0; q < 6; q++ {
				u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
				got, err := derived.Compute(alg, u, v)
				if err != nil {
					t.Fatal(err)
				}
				want, err := rebuilt.Compute(alg, u, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d %s s(%d,%d): derived %v, rebuilt %v (stats %+v)",
						trial, alg, u, v, got, want, stats)
				}
			}
			gotSS, err := derived.SingleSource(alg, trial%g.NumVertices())
			if err != nil {
				t.Fatal(err)
			}
			wantSS, err := rebuilt.SingleSource(alg, trial%g.NumVertices())
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantSS {
				if gotSS[i] != wantSS[i] {
					t.Fatalf("trial %d %s single-source[%d]: %v vs %v", trial, alg, i, gotSS[i], wantSS[i])
				}
			}
		}
		gotM, err := derived.SRSPMatrix([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := rebuilt.SRSPMatrix([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantM {
			for j := range wantM[i] {
				if gotM[i][j] != wantM[i][j] {
					t.Fatalf("trial %d SRSPMatrix[%d][%d]: %v vs %v", trial, i, j, gotM[i][j], wantM[i][j])
				}
			}
		}
	}
}

// TestApplyUpdatesTargetedInvalidation pins the eviction set on a graph
// where reachability is obvious: on the path 0 → 1 → … → 9, mutating
// arc (8, 9) can only change the reversed-walk rows of vertices
// reachable from head 9 — and 9 has no out-arcs, so exactly the entry
// for source 9 is evicted, no matter how many rows are warm.
func TestApplyUpdatesTargetedInvalidation(t *testing.T) {
	const n = 10
	b := ugraph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddArc(v, v+1, 0.9)
	}
	g := b.MustBuild()
	e, err := NewEngine(g, Options{Steps: 3, N: 50, L: 3, Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if err := e.WarmRowsFor(AlgBaseline, all); err != nil {
		t.Fatal(err)
	}
	derived, stats, err := e.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpReweight, U: 8, V: 9, P: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsEvicted != 1 || stats.RowsRetained != n-1 {
		t.Fatalf("evicted %d retained %d, want 1 / %d (stats %+v)", stats.RowsEvicted, stats.RowsRetained, n-1, stats)
	}
	// Mutating (0, 1) instead puts heads at 1; every vertex 1..9 is
	// within 2 forward hops? No — only 1, 2, 3 are within Steps−1 = 2
	// hops of head 1, so exactly those three warm entries die.
	_, stats2, err := e.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpReweight, U: 0, V: 1, P: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.RowsEvicted != 3 {
		t.Fatalf("head-1 mutation evicted %d rows, want 3 (stats %+v)", stats2.RowsEvicted, stats2)
	}
	// And the derived engine still answers exactly like a rebuild.
	rebuilt, err := NewEngine(derived.Graph(), e.Options())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		got, err := derived.Baseline(u, (u+1)%n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rebuilt.Baseline(u, (u+1)%n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("baseline s(%d,%d): derived %v, rebuilt %v", u, (u+1)%n, got, want)
		}
	}
}

func TestApplyUpdatesValidationAndChaining(t *testing.T) {
	g := ugraph.PaperFig1()
	e, err := NewEngine(g, Options{Seed: 1, N: 40, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid batch: error, predecessor untouched.
	if _, _, err := e.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpDelete, U: 0, V: 0}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if e.Generation() != 1 {
		t.Fatalf("failed update changed generation to %d", e.Generation())
	}
	// Empty batch: legal, everything retained.
	if _, err := e.Baseline(0, 1); err != nil {
		t.Fatal(err)
	}
	d1, stats, err := e.ApplyUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsEvicted != 0 || stats.RowsRetained == 0 {
		t.Fatalf("empty batch: %+v", stats)
	}
	// Chained updates keep incrementing the generation.
	d2, _, err := d1.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpInsert, U: 0, V: 0, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	d3, _, err := d2.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpDelete, U: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Generation() != 4 {
		t.Fatalf("generation %d after three derivations, want 4", d3.Generation())
	}
	if d3.Graph().NumArcs() != g.NumArcs() {
		t.Fatalf("insert+delete changed arc count: %d vs %d", d3.Graph().NumArcs(), g.NumArcs())
	}
}

// TestUpdateInvalidationBounded10k is the acceptance bound of the
// update plane: on the 10k-vertex bench graph with a serving-shaped
// warm cache (two-phase depth l = 1), a single-arc update invalidates
// well under 20% of cached rows.
func TestUpdateInvalidationBounded10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-vertex graph build in -short mode")
	}
	g := gen.CoAuthorship(10_000, 2, rng.New(5))
	e, err := NewEngine(g, Options{Seed: 1, N: 100, L: 1, RowCacheSize: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, g.NumVertices())
	for i := range all {
		all[i] = i
	}
	if err := e.WarmRowsFor(AlgTwoPhase, all); err != nil {
		t.Fatal(err)
	}
	u := -1
	var v int
	for w := 0; w < g.NumVertices(); w++ {
		if len(g.Out(w)) > 0 {
			u, v = w, int(g.Out(w)[0])
			break
		}
	}
	if u < 0 {
		t.Fatal("bench graph has no arcs")
	}
	_, stats, err := e.ApplyUpdates([]ugraph.ArcUpdate{{Op: ugraph.OpReweight, U: u, V: v, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	total := stats.RowsEvicted + stats.RowsRetained
	if total < 9000 {
		t.Fatalf("cache was not warm: only %d entries", total)
	}
	if frac := float64(stats.RowsEvicted) / float64(total); frac >= 0.20 {
		t.Fatalf("single-arc update invalidated %.1f%% of cached rows (stats %+v)", 100*frac, stats)
	}
}

// TestMeetingSpeedupWrapper pins the exported MeetingSpeedup wrapper to
// the estimates the SRSP path consumes.
func TestMeetingSpeedupWrapper(t *testing.T) {
	g := ugraph.PaperFig1()
	e, err := NewEngine(g, Options{Seed: 1, N: 64, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.MeetingSpeedup(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != e.Options().Steps+1 {
		t.Fatalf("got %d levels, want %d", len(m), e.Options().Steps+1)
	}
	if m[0] != 0 {
		t.Fatalf("m(0)(0,1) = %v for distinct sources, want 0", m[0])
	}
	if _, err := e.MeetingSpeedup(-1, 0); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

package core

import (
	"testing"

	"usimrank/internal/ugraph"
)

func TestAlgorithmStrings(t *testing.T) {
	if AlgBaseline.String() != "Baseline" || AlgSampling.String() != "Sampling" ||
		AlgTwoPhase.String() != "SR-TS" || AlgSRSP.String() != "SR-SP" ||
		AlgSamplingV2.String() != "Sampling-v2" {
		t.Fatal("algorithm names wrong")
	}
}

func TestComputeDispatch(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{N: 500, Seed: 3})
	for _, alg := range Algorithms() {
		v, err := e.Compute(alg, 0, 1)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("%v = %v", alg, v)
		}
	}
	if _, err := e.Compute(Algorithm(42), 0, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCloneIndependentButEqual(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{N: 2000, Seed: 7})
	c := e.Clone()
	for _, alg := range Algorithms() {
		a, err := e.Compute(alg, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Compute(alg, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: clone %v != original %v", alg, b, a)
		}
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 1000, Seed: 9})
	var pairs [][2]int
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	for _, alg := range []Algorithm{AlgBaseline, AlgSRSP} {
		seq := make([]float64, len(pairs))
		for i, p := range pairs {
			v, err := e.Compute(alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			seq[i] = v
		}
		got := Batch(e, alg, pairs, 4)
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("%v pair %v: %v", alg, pairs[i], r.Err)
			}
			if r.Value != seq[i] {
				t.Fatalf("%v pair %v: batch %v != sequential %v", alg, pairs[i], r.Value, seq[i])
			}
			if r.U != pairs[i][0] || r.V != pairs[i][1] {
				t.Fatalf("result order scrambled at %d", i)
			}
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{Seed: 1})
	if out := Batch(e, AlgBaseline, nil, 8); len(out) != 0 {
		t.Fatal("empty batch returned results")
	}
	// More workers than pairs, and workers < 1.
	for _, workers := range []int{-3, 0, 100} {
		out := Batch(e, AlgBaseline, [][2]int{{0, 1}}, workers)
		if len(out) != 1 || out[0].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, out)
		}
	}
	// Errors propagate per pair.
	out := Batch(e, AlgBaseline, [][2]int{{0, 99}}, 2)
	if out[0].Err == nil {
		t.Fatal("out-of-range pair did not error")
	}
}

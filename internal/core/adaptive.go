package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"usimrank/internal/mc"
	"usimrank/internal/obs"
	"usimrank/internal/parallel"
	"usimrank/internal/stats"
)

// Adaptive (ε, δ) queries: instead of a fixed N walk pairs, the sampled
// strategies run the v2 lockstep kernel in geometric rounds (N₁, 2N₁, …)
// and stop as soon as a confidence radius drops below the requested ε —
// the paper's Eq. 14 accuracy analysis turned from a test-suite artifact
// into a request parameter. Per round the estimator folds each walk
// pair into a single score
//
//	X_i = Σ_k coef[k] · 1[pair i meets at step k],
//
// whose mean is exactly the Eq. 12 / Eq. 15 combination of the sampled
// meeting frequencies: coef[k] = (1−c)·cᵏ on the sampled steps, cⁿ at
// the horizon, and 0 on an exact prefix (TwoPhase/SRSP compute k ≤ l
// exactly and sample only the tail, so their X_i ranges over
// [0, c^(l+1)] — the Corollary 1 variance shrinkage, which makes their
// adaptive queries converge fastest). The radius is the tighter of the
// empirical-Bernstein and Hoeffding bounds at a per-round confidence
// share δ/rounds (union bound over the whole schedule), so
// P(|estimate − E| > radius at any committed round) ≤ δ.
//
// Determinism: rounds reuse the fixed-size chunk machinery of the v2
// kernel — per-side streams seeded by (engine seed, vertex, side),
// chunk seeds drawn in order — so round r's walk set is a prefix of
// round r+1's, and per-chunk (ΣX, ΣX²) moments merge in chunk order.
// At a fixed option set the whole trajectory (every round's estimate,
// radius, and the stopping point) is bit-stable across Parallelism
// values and across the pair/source query shapes.
//
// Cancellation degrades gracefully instead of failing: only completed
// rounds commit an estimate, a round cut short by ctx is discarded
// whole (a partially sampled round would bias the mean), and if at
// least one round committed the query returns its best-so-far estimate
// with Partial=true and a nil error. Zero committed rounds surface
// ctx's error as usual. The loop also stops before a round it cannot
// finish — when the remaining deadline is under ~1.5× the previous
// round's duration — so deadline-pressured queries return a committed
// interval instead of burning the budget on a round that will be
// thrown away. All sampled strategies share the v2 kernel here: SR-SP's
// filter bit-vectors amortise over fixed sweeps but cannot extend a
// committed walk set round over round, so AlgSRSP's adaptive tail runs
// the same lockstep walks as AlgTwoPhase's.

// AdaptiveDefaultDelta is the confidence parameter assumed when a
// request sets eps but leaves delta zero.
const AdaptiveDefaultDelta = 0.05

const (
	// adaptiveMinWalks is the default first-round walk-pair budget:
	// two chunks, so even the first round exercises the chunk merge.
	adaptiveMinWalks = 2 * parallel.DefaultChunkSize
	// adaptiveWalkCeiling caps the walk budget of one adaptive query no
	// matter how tight the requested ε is.
	adaptiveWalkCeiling = 1 << 20
	// adaptiveCapDeltaShare sizes the default walk cap: the cap is the
	// Hoeffding budget at confidence δ/adaptiveCapDeltaShare, which
	// dominates the per-round share δ/len(totals) for every schedule the
	// doubling can produce (≤ 13 rounds from 256 to the ceiling) — so a
	// query reaching the cap has converged under the worst-case bound.
	adaptiveCapDeltaShare = 16
)

// AdaptiveOptions parameterises an adaptive query: stop as soon as the
// confidence radius is ≤ Eps, wrong with probability at most Delta.
type AdaptiveOptions struct {
	// Eps is the requested confidence radius. Must be > 0.
	Eps float64
	// Delta is the allowed failure probability in (0, 1);
	// 0 selects AdaptiveDefaultDelta.
	Delta float64
	// MinWalks is the first-round walk-pair budget (0: two chunks).
	// Rounds double from here; the value is rounded up to whole chunks.
	MinWalks int
	// MaxWalks caps the walk pairs per estimate (0: the Hoeffding
	// budget for (Eps, Delta), itself capped at 2²⁰). The cap is what
	// bounds a query whose variance keeps the Bernstein radius wide.
	MaxWalks int
}

func (ao AdaptiveOptions) validate() error {
	if !(ao.Eps > 0) || math.IsInf(ao.Eps, 0) {
		return fmt.Errorf("core: adaptive eps %v outside (0, +Inf)", ao.Eps)
	}
	if ao.Delta != 0 && !(ao.Delta > 0 && ao.Delta < 1) {
		return fmt.Errorf("core: adaptive delta %v outside (0, 1)", ao.Delta)
	}
	if ao.MinWalks < 0 || ao.MaxWalks < 0 {
		return fmt.Errorf("core: adaptive walk budgets must be non-negative")
	}
	if ao.MaxWalks > 0 && ao.MinWalks > ao.MaxWalks {
		return fmt.Errorf("core: adaptive min walks %d > max walks %d", ao.MinWalks, ao.MaxWalks)
	}
	return nil
}

// AdaptiveResult reports an adaptive query's estimate together with how
// hard the stopping rule had to work for it.
type AdaptiveResult struct {
	// Score is the pairwise estimate (pair shape only).
	Score float64
	// Scores are the per-candidate estimates (source shapes only).
	Scores []float64
	// Radius is the confidence radius of the estimate at the last
	// committed round — the maximum over candidates for source shapes.
	// The true value lies within Radius of the estimate with
	// probability ≥ 1−δ. 0 for exact (baseline) queries.
	Radius float64
	// Walks is the number of walk-pair samples behind the estimate (per
	// candidate for source shapes) — compare against Options.N for the
	// fixed-budget equivalent.
	Walks int64
	// Rounds is the number of committed sampling rounds.
	Rounds int
	// Converged reports that the stopping rule was satisfied: Radius ≤
	// the requested Eps.
	Converged bool
	// Partial reports that a deadline stopped the query before it
	// converged or exhausted its walk budget; Score/Scores then carry
	// the best-so-far estimate of the last committed round.
	Partial bool
}

// adaptivePlan is one adaptive query's resolved configuration.
type adaptivePlan struct {
	l      int       // exact-prefix depth; -1 when fully sampled
	coef   []float64 // per-step weight of the sampled series; nil when fully exact
	b      float64   // Σ coef: the range of one walk pair's score X_i
	totals []int     // cumulative walk-pair target per round
	deltaR float64   // per-round confidence share (union bound over totals)
	eps    float64
	delta  float64
}

// exact reports that the algorithm needs no sampling at this option
// set (baseline, or an exact prefix covering every step).
func (ap adaptivePlan) exact() bool { return len(ap.totals) == 0 }

// planAdaptive resolves the coefficients, walk schedule, and confidence
// shares of one adaptive query.
func (e *Engine) planAdaptive(alg Algorithm, ao AdaptiveOptions) (adaptivePlan, error) {
	if err := ao.validate(); err != nil {
		return adaptivePlan{}, err
	}
	ap := adaptivePlan{eps: ao.Eps, delta: ao.Delta}
	if ap.delta == 0 {
		ap.delta = AdaptiveDefaultDelta
	}
	n := e.opt.Steps
	switch alg {
	case AlgBaseline:
		ap.l = n
	case AlgSampling, AlgSamplingV2:
		ap.l = -1
	case AlgTwoPhase, AlgSRSP:
		ap.l = min(e.opt.L, n)
	default:
		return adaptivePlan{}, fmt.Errorf("core: algorithm %v has no adaptive mode", alg)
	}
	if ap.l >= n {
		return ap, nil // fully exact: nothing to sample
	}
	ap.coef = make([]float64, n+1)
	c := e.opt.C
	ck := 1.0
	for k := 0; k < n; k++ {
		if k > ap.l {
			ap.coef[k] = (1 - c) * ck
		}
		ck *= c
	}
	ap.coef[n] = ck
	for _, w := range ap.coef {
		ap.b += w // ≈ 1 fully sampled, c^(l+1) with an exact prefix
	}
	minW := ao.MinWalks
	if minW == 0 {
		minW = adaptiveMinWalks
	}
	maxW := ao.MaxWalks
	if maxW == 0 {
		maxW = stats.HoeffdingSamples(ap.b, ap.eps, ap.delta/adaptiveCapDeltaShare)
		if maxW > adaptiveWalkCeiling {
			maxW = adaptiveWalkCeiling
		}
	}
	ap.totals = adaptiveRounds(minW, maxW)
	ap.deltaR = ap.delta / float64(len(ap.totals))
	return ap, nil
}

// adaptiveRounds builds the chunk-aligned doubling schedule from minW
// up to (exactly) maxW walk pairs.
func adaptiveRounds(minW, maxW int) []int {
	align := func(n int) int {
		const cs = parallel.DefaultChunkSize
		if n < cs {
			return cs
		}
		return (n + cs - 1) / cs * cs
	}
	minW, maxW = align(minW), align(maxW)
	if maxW < minW {
		maxW = minW
	}
	var totals []int
	for t := minW; t < maxW; t *= 2 {
		totals = append(totals, t)
	}
	return append(totals, maxW)
}

// adaptiveInterval turns running moments over n samples in [0, b] into
// the committed (mean, radius) pair: the tighter of the empirical-
// Bernstein and Hoeffding radii at the round's confidence share.
func adaptiveInterval(sum, sumsq, b float64, n int, deltaR float64) (mean, radius float64) {
	fn := float64(n)
	mean = sum / fn
	variance := 0.0
	if n > 1 {
		variance = (sumsq - fn*mean*mean) / (fn - 1)
	}
	radius = math.Min(
		stats.BernsteinRadius(variance, b, n, deltaR),
		stats.HoeffdingRadius(b, n, deltaR),
	)
	return mean, radius
}

// exactPrefix evaluates the exact part of the Eq. 15 split,
// Σ_{k=0}^{l} (1−c)·cᵏ·m(k)(u,v), for an exact-prefix depth l < Steps.
// l = −1 (fully sampled) contributes nothing.
func (e *Engine) exactPrefix(u, v, l int) (float64, error) {
	if l < 0 {
		return 0, nil
	}
	m, err := e.MeetingExact(u, v, l)
	if err != nil {
		return 0, err
	}
	part, ck := 0.0, 1.0
	for k := 0; k <= l; k++ {
		part += (1 - e.opt.C) * ck * m[k]
		ck *= e.opt.C
	}
	return part, nil
}

// adaptiveCandidate folds the new chunks [lo, hi) of round target t
// into one candidate's score moments, returning the round's (ΣX, ΣX²).
// s carries the shared source grid (read-only); w is private scratch.
type adaptiveCandidate func(i, lo, hi, t, newWalks int, s, w *v2scratch) (sum, sumsq float64)

// adaptiveSweep is the shared round loop of every adaptive query shape:
// the source's walk grid grows prefix-stably round over round, cand
// scores each unconverged candidate against the new chunks, and the
// loop commits (estimate, radius) snapshots until every candidate's
// radius is ≤ ε, the walk budget is spent, or the deadline intervenes.
// Individually converged candidates freeze — their committed estimate
// and radius stand — so one slow candidate never forces sampling work
// on the rest of the sweep.
func (e *Engine) adaptiveSweep(ctx context.Context, p *parallel.Pool, u int, prefix []float64, ap adaptivePlan, cand adaptiveCandidate) (AdaptiveResult, error) {
	nc := len(prefix)
	scores := make([]float64, nc)
	res := AdaptiveResult{Scores: scores}
	if nc == 0 {
		res.Converged = true
		return res, nil
	}
	radii := make([]float64, nc)
	sums := make([]float64, nc)
	sumsqs := make([]float64, nc)
	conv := make([]bool, nc)
	stride := e.opt.Steps + 1
	s := e.v2pool.Get()
	defer e.v2pool.Put(s)
	prevCh, prevT := 0, 0
	deadline, hasDeadline := ctx.Deadline()
	var lastRound time.Duration
	for _, t := range ap.totals {
		if p.Err() != nil {
			break
		}
		// Don't start a round the deadline cannot fit: an aborted round
		// is discarded whole, so its walks would be pure waste.
		if res.Rounds > 0 && hasDeadline && time.Until(deadline) < lastRound*3/2 {
			break
		}
		start := time.Now()
		// Rebuilding the chunk set from scratch is cheap (one seed draw
		// per chunk) and prefix-stable: totals are whole chunks, so the
		// first prevCh chunks come out bit-identical every round.
		s.r.Reseed(e.sideSeed(u, saltWalkU))
		s.cu = parallel.AppendChunks(s.cu[:0], t, parallel.DefaultChunkSize, &s.r)
		nch := len(s.cu)
		s.uoff = growInt32(s.uoff, nch+1)
		gridLen := 0
		for ci, c := range s.cu {
			s.uoff[ci] = int32(gridLen)
			gridLen += stride * c.Len()
		}
		s.uoff[nch] = int32(gridLen)
		s.posU = growInt32Keep(s.posU, gridLen)
		plan := e.v2Plan()
		if p.Workers() <= 1 || nch-prevCh == 1 {
			for ci := prevCh; ci < nch && p.Err() == nil; ci++ {
				e.v2SourceChunk(plan, s, s, u, ci)
			}
		} else {
			lo := prevCh
			p.For(nch-lo, func(i int) {
				w := e.v2pool.Get()
				defer e.v2pool.Put(w)
				e.v2SourceChunk(plan, s, w, u, lo+i)
			})
		}
		if p.Err() != nil {
			break
		}
		lo, newWalks := prevCh, t-prevT
		if p.Workers() <= 1 {
			for i := 0; i < nc && p.Err() == nil; i++ {
				if conv[i] {
					continue
				}
				a, q := cand(i, lo, nch, t, newWalks, s, s)
				sums[i] += a
				sumsqs[i] += q
			}
		} else {
			p.For(nc, func(i int) {
				if conv[i] {
					return
				}
				w := e.v2pool.Get()
				defer e.v2pool.Put(w)
				a, q := cand(i, lo, nch, t, newWalks, s, w)
				sums[i] += a
				sumsqs[i] += q
			})
		}
		if p.Err() != nil {
			break // round incomplete: discard, keep the last committed snapshot
		}
		maxR := 0.0
		for i := 0; i < nc; i++ {
			if !conv[i] {
				mean, radius := adaptiveInterval(sums[i], sumsqs[i], ap.b, t, ap.deltaR)
				scores[i] = prefix[i] + mean
				radii[i] = radius
				if radius <= ap.eps {
					conv[i] = true
				}
			}
			if radii[i] > maxR {
				maxR = radii[i]
			}
		}
		res.Radius = maxR
		res.Walks = int64(t)
		res.Rounds++
		prevCh, prevT = nch, t
		lastRound = time.Since(start)
		if maxR <= ap.eps {
			res.Converged = true
			break
		}
	}
	if res.Rounds == 0 {
		// Nothing committed: surface the cancellation as an error, the
		// same contract as the non-adaptive Ctx shapes. (The first round
		// always starts, so zero rounds implies a cancelled pool.)
		if err := p.Err(); err != nil {
			return AdaptiveResult{}, err
		}
		if err := ctx.Err(); err != nil {
			return AdaptiveResult{}, err
		}
	}
	// Stopped before converging and before the budget ran out: a
	// deadline cut the query short — a partial result, not a failure.
	if !res.Converged && res.Rounds < len(ap.totals) {
		res.Partial = true
	}
	return res, nil
}

// sampledCandidate returns the adaptiveCandidate that samples each
// candidate's own v2 walks against the shared source grid — chunk
// seeds match the pairwise shape's, so a sweep's per-candidate moments
// are bit-identical to nc independent pair queries.
func (e *Engine) sampledCandidate(candidates []int, ap adaptivePlan) adaptiveCandidate {
	plan := e.v2Plan()
	n := e.opt.Steps
	stride := n + 1
	return func(i, lo, hi, t, newWalks int, s, w *v2scratch) (float64, float64) {
		v := candidates[i]
		w.r.Reseed(e.sideSeed(v, saltWalkV))
		w.cv = parallel.AppendChunks(w.cv[:0], t, parallel.DefaultChunkSize, &w.r)
		var rs, rq float64
		arcs := 0
		for ci := lo; ci < hi; ci++ {
			c := w.cv[ci]
			W := c.Len()
			w.posV = growInt32(w.posV, stride*W)
			w.r.Reseed(c.Seed)
			plan.Sample(v, n, W, &w.r, &w.arena, w.posV)
			arcs += w.arena.Instantiated()
			w.xbuf = growFloat64(w.xbuf, W)
			cs, cq := mc.AccumulateWeighted(s.posU[s.uoff[ci]:s.uoff[ci+1]], w.posV, n, W, ap.coef, w.xbuf)
			rs += cs
			rq += cq
		}
		e.kc.walks.Add(uint64(newWalks))
		e.kc.arcs.Add(uint64(arcs))
		e.kc.noteArena(w.arena.FootprintBytes())
		return rs, rq
	}
}

// AdaptiveCompute is the pairwise adaptive query: ŝ(u,v) within
// ao.Eps at confidence 1−ao.Delta, using as few walk pairs as the
// stopping rule allows. Exact strategies (baseline, or an exact prefix
// covering every step) return the exact score with Radius 0.
func (e *Engine) AdaptiveCompute(alg Algorithm, u, v int, ao AdaptiveOptions) (AdaptiveResult, error) {
	return e.adaptivePair(context.Background(), e.pool, alg, u, v, ao)
}

// AdaptiveComputeCtx is AdaptiveCompute with graceful degradation: when
// ctx expires after at least one committed round, the best-so-far
// estimate returns with Partial=true instead of an error.
func (e *Engine) AdaptiveComputeCtx(ctx context.Context, alg Algorithm, u, v int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := ctx.Err(); err != nil {
		return AdaptiveResult{}, err
	}
	sp := obs.SpanFromContext(ctx).Start("adaptive_pair")
	res, err := e.adaptivePair(ctx, e.pool.WithContext(ctx), alg, u, v, ao)
	noteAdaptiveSpan(sp, res, err)
	return res, err
}

func (e *Engine) adaptivePair(ctx context.Context, p *parallel.Pool, alg Algorithm, u, v int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := e.checkVertex(u); err != nil {
		return AdaptiveResult{}, err
	}
	if err := e.checkVertex(v); err != nil {
		return AdaptiveResult{}, err
	}
	ap, err := e.planAdaptive(alg, ao)
	if err != nil {
		return AdaptiveResult{}, err
	}
	if ap.exact() {
		s, err := e.computeWith(p, alg, u, v)
		if err != nil {
			return AdaptiveResult{}, err
		}
		if err := p.Err(); err != nil {
			return AdaptiveResult{}, err
		}
		return AdaptiveResult{Score: s, Converged: true}, nil
	}
	pre, err := e.exactPrefix(u, v, ap.l)
	if err != nil {
		return AdaptiveResult{}, err
	}
	res, err := e.adaptiveSweep(ctx, p, u, []float64{pre}, ap, e.sampledCandidate([]int{v}, ap))
	if err != nil {
		return AdaptiveResult{}, err
	}
	res.Score = res.Scores[0]
	res.Scores = nil
	return res, nil
}

// AdaptiveSingleSource is the adaptive single-source sweep: every
// score of s(u, ·) within ao.Eps at confidence 1−ao.Delta, with
// individually converged candidates frozen out of later rounds.
func (e *Engine) AdaptiveSingleSource(alg Algorithm, u int, ao AdaptiveOptions) (AdaptiveResult, error) {
	return e.adaptiveSource(context.Background(), e.pool, alg, u, e.allCandidates(), ao)
}

// AdaptiveSingleSourceCtx is AdaptiveSingleSource with graceful
// degradation under ctx's deadline.
func (e *Engine) AdaptiveSingleSourceCtx(ctx context.Context, alg Algorithm, u int, ao AdaptiveOptions) (AdaptiveResult, error) {
	return e.AdaptiveSingleSourceAgainstCtx(ctx, alg, u, e.allCandidates(), ao)
}

// AdaptiveSingleSourceAgainstCtx restricts the adaptive sweep to an
// explicit candidate set: Scores[i] estimates s(u, candidates[i]).
func (e *Engine) AdaptiveSingleSourceAgainstCtx(ctx context.Context, alg Algorithm, u int, candidates []int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := ctx.Err(); err != nil {
		return AdaptiveResult{}, err
	}
	sp := obs.SpanFromContext(ctx).Start("adaptive_single_source")
	sp.Add("candidates", int64(len(candidates)))
	res, err := e.adaptiveSource(ctx, e.pool.WithContext(ctx), alg, u, candidates, ao)
	noteAdaptiveSpan(sp, res, err)
	return res, err
}

func (e *Engine) adaptiveSource(ctx context.Context, p *parallel.Pool, alg Algorithm, u int, candidates []int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := e.checkVertex(u); err != nil {
		return AdaptiveResult{}, err
	}
	for _, v := range candidates {
		if err := e.checkVertex(v); err != nil {
			return AdaptiveResult{}, err
		}
	}
	ap, err := e.planAdaptive(alg, ao)
	if err != nil {
		return AdaptiveResult{}, err
	}
	if ap.exact() {
		out, err := e.singleSourceWith(p, alg, u, candidates)
		if err != nil {
			return AdaptiveResult{}, err
		}
		if err := p.Err(); err != nil {
			return AdaptiveResult{}, err
		}
		return AdaptiveResult{Scores: out, Converged: true}, nil
	}
	prefix := make([]float64, len(candidates))
	if ap.l >= 0 {
		errs := make([]error, len(candidates))
		p.For(len(candidates), func(i int) {
			prefix[i], errs[i] = e.exactPrefix(u, candidates[i], ap.l)
		})
		if err := p.Err(); err != nil {
			return AdaptiveResult{}, err
		}
		for _, err := range errs {
			if err != nil {
				return AdaptiveResult{}, err
			}
		}
	}
	return e.adaptiveSweep(ctx, p, u, prefix, ap, e.sampledCandidate(candidates, ap))
}

// AdaptiveSingleSourceIndexedCtx is the adaptive form of the indexed
// single-source query: the source's residual walks grow in rounds while
// every candidate is scored by probing its precomputed occupancy rows,
// X_i = Σ_k coef[k]·occ_v(k)(pos_i(k)) ∈ [0, 1]. The stopping rule
// bounds the residual-sampling error relative to the index's stored
// v-side occupancies (the index's own build-time error is a separate,
// fixed quantity, exactly as in the non-adaptive indexed contract).
func (e *Engine) AdaptiveSingleSourceIndexedCtx(ctx context.Context, x SourceIndex, u int, ao AdaptiveOptions) (AdaptiveResult, error) {
	return e.AdaptiveSingleSourceIndexedAgainstCtx(ctx, x, u, e.allCandidates(), ao)
}

// AdaptiveSingleSourceIndexedAgainstCtx restricts the adaptive indexed
// sweep to an explicit candidate set.
func (e *Engine) AdaptiveSingleSourceIndexedAgainstCtx(ctx context.Context, x SourceIndex, u int, candidates []int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := ctx.Err(); err != nil {
		return AdaptiveResult{}, err
	}
	sp := obs.SpanFromContext(ctx).Start("adaptive_indexed")
	sp.Add("candidates", int64(len(candidates)))
	res, err := e.adaptiveIndexed(ctx, e.pool.WithContext(ctx), x, u, candidates, ao)
	noteAdaptiveSpan(sp, res, err)
	return res, err
}

func (e *Engine) adaptiveIndexed(ctx context.Context, p *parallel.Pool, x SourceIndex, u int, candidates []int, ao AdaptiveOptions) (AdaptiveResult, error) {
	if err := e.CheckIndex(x); err != nil {
		return AdaptiveResult{}, err
	}
	if err := e.checkVertex(u); err != nil {
		return AdaptiveResult{}, err
	}
	for _, v := range candidates {
		if err := e.checkVertex(v); err != nil {
			return AdaptiveResult{}, err
		}
	}
	// The indexed estimator has no exact prefix: plan as fully sampled.
	ap, err := e.planAdaptive(AlgSamplingV2, ao)
	if err != nil {
		return AdaptiveResult{}, err
	}
	n := e.opt.Steps
	cand := func(i, lo, hi, t, newWalks int, s, w *v2scratch) (float64, float64) {
		v := candidates[i]
		var rs, rq float64
		for ci := lo; ci < hi; ci++ {
			W := s.cu[ci].Len()
			grid := s.posU[s.uoff[ci]:s.uoff[ci+1]]
			w.xbuf = growFloat64(w.xbuf, W)
			for ii := range w.xbuf[:W] {
				w.xbuf[ii] = 0
			}
			for k := 0; k <= n; k++ {
				ck := ap.coef[k]
				if ck == 0 {
					continue
				}
				row := x.Row(v, k)
				for ii, at := range grid[k*W : (k+1)*W] {
					if at >= 0 {
						w.xbuf[ii] += ck * row.At(at)
					}
				}
			}
			for _, xi := range w.xbuf[:W] {
				rs += xi
				rq += xi * xi
			}
		}
		return rs, rq
	}
	return e.adaptiveSweep(ctx, p, u, make([]float64, len(candidates)), ap, cand)
}

// allCandidates returns the full vertex set, the candidate list of the
// unrestricted single-source shapes.
func (e *Engine) allCandidates() []int {
	candidates := make([]int, e.g.NumVertices())
	for i := range candidates {
		candidates[i] = i
	}
	return candidates
}

// noteAdaptiveSpan records an adaptive query's outcome on its span.
func noteAdaptiveSpan(sp obs.Span, res AdaptiveResult, err error) {
	sp.Add("rounds", int64(res.Rounds))
	sp.Add("walks", res.Walks)
	if res.Partial {
		sp.Add("partial", 1)
	}
	if res.Converged {
		sp.Add("converged", 1)
	}
	sp.Error(err)
	sp.End()
}

package core

import (
	"usimrank/internal/mc"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
)

// This file plumbs the v2 sampling kernel (internal/mc's Plan/Arena)
// into the engine as the SamplingV2 strategy. The estimator is the same
// Fig. 4 Monte Carlo scheme as AlgSampling and keeps the same
// determinism contract — per-side walk streams seeded by (engine seed,
// vertex, side), fixed-size chunks, integer per-chunk counts merged in
// chunk order, bit-identical at every Parallelism — but consumes
// randomness in the v2 kernel's order, so it is pinned by its own
// golden files rather than v1's.
//
// The whole path is allocation-free at steady state: chunk sets,
// position grids, counts and the walk arena live in pooled v2scratch
// buffers that grow to a high-water mark and are reused. At
// Parallelism 1 the fan-out branches are bypassed entirely (a closure
// handed to Pool.For escapes to the heap), which is the configuration
// the allocation regression gate measures.

// v2scratch is one worker's reusable SamplingV2 state. It is handed out
// exclusively by the engine's scratch pool; all fields are high-water
// buffers.
type v2scratch struct {
	arena mc.Arena
	r     rng.RNG // by value: reseeded per stream, never allocated

	cu, cv []parallel.Chunk // walk chunk sets of the two sides
	posU   []int32          // u-side position grid(s)
	posV   []int32          // v-side position grid of one chunk
	uoff   []int32          // per-chunk offsets into posU (single-source)
	counts []int64          // integer meeting counts
	m      []float64        // merged m̂(k) estimate

	// Adaptive (ε, δ) round-loop state; see adaptive.go.
	sums   []float64 // per-chunk Σ X_i of the weighted estimator
	sumsqs []float64 // per-chunk Σ X_i², parallel to sums
	xbuf   []float64 // per-walk score scratch of one chunk
}

// newV2Pool sizes the scratch pool for opt: every worker plus a few
// outer query scopes can hold a buffer without thrashing.
func newV2Pool(opt Options) *parallel.BufferPool[*v2scratch] {
	return parallel.NewBufferPool(2*opt.Parallelism+4, func() *v2scratch { return new(v2scratch) })
}

// v2Plan returns the engine's arc-sampling plan over the reversed
// graph, building it on first use. The plan is a pure function of the
// graph, so a lazily built plan is indistinguishable from an eager one;
// ApplyUpdates successors start with no plan and rebuild on demand.
func (e *Engine) v2Plan() *mc.Plan {
	if p := e.v2plan.Load(); p != nil {
		return p
	}
	e.v2mu.Lock()
	defer e.v2mu.Unlock()
	if p := e.v2plan.Load(); p != nil {
		return p
	}
	p := mc.BuildPlan(e.rev)
	e.v2plan.Store(p)
	return p
}

// SamplingV2 computes ŝ(n)(u,v) with the v2 Monte Carlo kernel — the
// same estimator as Sampling, rebuilt allocation-free and cache-aware
// (see internal/mc). Scores are bit-identical across Parallelism levels
// and across query shapes, but not to Sampling's: the two strategies
// consume randomness differently and are pinned independently.
func (e *Engine) SamplingV2(u, v int) (float64, error) {
	return e.samplingV2With(e.pool, u, v)
}

func (e *Engine) samplingV2With(p *parallel.Pool, u, v int) (float64, error) {
	if err := e.checkVertex(u); err != nil {
		return 0, err
	}
	if err := e.checkVertex(v); err != nil {
		return 0, err
	}
	plan := e.v2Plan()
	stride := e.opt.Steps + 1
	s := e.v2pool.Get()
	defer e.v2pool.Put(s)
	s.r.Reseed(e.sideSeed(u, saltWalkU))
	s.cu = parallel.AppendChunks(s.cu[:0], e.opt.N, parallel.DefaultChunkSize, &s.r)
	s.r.Reseed(e.sideSeed(v, saltWalkV))
	s.cv = parallel.AppendChunks(s.cv[:0], e.opt.N, parallel.DefaultChunkSize, &s.r)
	nch := len(s.cu)
	// One private counts slot per chunk: no atomics, merge in chunk
	// order below.
	s.counts = growInt64(s.counts, nch*stride)
	clearInt64(s.counts)
	if p.Workers() <= 1 || nch == 1 {
		for ci := 0; ci < nch && p.Err() == nil; ci++ {
			e.v2PairChunk(plan, s, s, u, v, ci)
		}
	} else {
		p.For(nch, func(ci int) {
			w := e.v2pool.Get()
			defer e.v2pool.Put(w)
			e.v2PairChunk(plan, s, w, u, v, ci)
		})
	}
	s.m = growFloat64(s.m, stride)
	for k := 0; k < stride; k++ {
		var c int64
		for ci := 0; ci < nch; ci++ {
			c += s.counts[ci*stride+k]
		}
		s.m[k] = float64(c) / float64(e.opt.N)
	}
	return Combine(s.m, e.opt.C, e.opt.Steps), nil
}

// v2PairChunk samples chunk ci of both sides and accumulates its
// meeting counts into the chunk's private slot of s.counts. s carries
// the shared chunk sets and counts grid; w supplies the sampling
// scratch (w == s on the serial path).
func (e *Engine) v2PairChunk(plan *mc.Plan, s, w *v2scratch, u, v, ci int) {
	n := e.opt.Steps
	stride := n + 1
	cu, cv := s.cu[ci], s.cv[ci]
	W := cu.Len() // == cv.Len(): both sides split the same N identically
	w.posU = growInt32(w.posU, stride*W)
	w.posV = growInt32(w.posV, stride*W)
	w.r.Reseed(cu.Seed)
	plan.Sample(u, n, W, &w.r, &w.arena, w.posU)
	arcs := w.arena.Instantiated()
	w.r.Reseed(cv.Seed)
	plan.Sample(v, n, W, &w.r, &w.arena, w.posV)
	e.kc.walks.Add(uint64(2 * W))
	e.kc.arcs.Add(uint64(arcs + w.arena.Instantiated()))
	e.kc.noteArena(w.arena.FootprintBytes())
	mc.CountMeets(w.posU, w.posV, n, W, s.counts[ci*stride:(ci+1)*stride])
}

// samplingV2Kernel is the SamplingV2 single-source kernel: the source's
// walk grids are sampled once per chunk into one shared buffer, then
// every candidate samples only its own side and counts meets against
// the shared grids. Per-chunk integer counts accumulate in chunk order
// — the exact pairwise merge — so every score is bit-identical to
// SamplingV2(u, candidates[i]).
func (e *Engine) samplingV2Kernel(p *parallel.Pool, u int, candidates []int, out []float64, _ []error) error {
	plan := e.v2Plan()
	stride := e.opt.Steps + 1
	s := e.v2pool.Get()
	defer e.v2pool.Put(s)
	s.r.Reseed(e.sideSeed(u, saltWalkU))
	s.cu = parallel.AppendChunks(s.cu[:0], e.opt.N, parallel.DefaultChunkSize, &s.r)
	nch := len(s.cu)
	s.uoff = growInt32(s.uoff, nch+1)
	total := 0
	for ci, c := range s.cu {
		s.uoff[ci] = int32(total)
		total += stride * c.Len()
	}
	s.uoff[nch] = int32(total)
	s.posU = growInt32(s.posU, total)
	if p.Workers() <= 1 {
		for ci := 0; ci < nch && p.Err() == nil; ci++ {
			e.v2SourceChunk(plan, s, s, u, ci)
		}
		for i := 0; i < len(candidates) && p.Err() == nil; i++ {
			out[i] = e.v2Candidate(plan, s, s, candidates[i])
		}
		return nil
	}
	p.For(nch, func(ci int) {
		w := e.v2pool.Get()
		defer e.v2pool.Put(w)
		e.v2SourceChunk(plan, s, w, u, ci)
	})
	// On a cancelled pool view the source grid may be incomplete, but
	// then the candidate fan-out below runs no tasks either; callers of
	// the Ctx query shapes discard the partial output.
	p.For(len(candidates), func(i int) {
		w := e.v2pool.Get()
		defer e.v2pool.Put(w)
		out[i] = e.v2Candidate(plan, s, w, candidates[i])
	})
	return nil
}

// v2SourceChunk samples the source's chunk ci into its disjoint block
// of the shared u-side grid.
func (e *Engine) v2SourceChunk(plan *mc.Plan, s, w *v2scratch, u, ci int) {
	c := s.cu[ci]
	w.r.Reseed(c.Seed)
	plan.Sample(u, e.opt.Steps, c.Len(), &w.r, &w.arena, s.posU[s.uoff[ci]:s.uoff[ci+1]])
	e.kc.walks.Add(uint64(c.Len()))
	e.kc.arcs.Add(uint64(w.arena.Instantiated()))
	e.kc.noteArena(w.arena.FootprintBytes())
}

// v2Candidate scores one candidate against the pre-sampled source
// grids. s holds the shared source state (read-only here); w is the
// candidate's private scratch. On the serial path w == s — safe because
// the fields v2Candidate writes (cv, posV, counts, m, r, arena) are not
// read by the source phase again.
func (e *Engine) v2Candidate(plan *mc.Plan, s, w *v2scratch, v int) float64 {
	n := e.opt.Steps
	stride := n + 1
	w.r.Reseed(e.sideSeed(v, saltWalkV))
	w.cv = parallel.AppendChunks(w.cv[:0], e.opt.N, parallel.DefaultChunkSize, &w.r)
	w.counts = growInt64(w.counts, stride)
	clearInt64(w.counts)
	arcs := 0
	for ci, c := range w.cv {
		W := c.Len()
		w.posV = growInt32(w.posV, stride*W)
		w.r.Reseed(c.Seed)
		plan.Sample(v, n, W, &w.r, &w.arena, w.posV)
		arcs += w.arena.Instantiated()
		mc.CountMeets(s.posU[s.uoff[ci]:s.uoff[ci+1]], w.posV, n, W, w.counts)
	}
	e.kc.walks.Add(uint64(e.opt.N))
	e.kc.arcs.Add(uint64(arcs))
	e.kc.noteArena(w.arena.FootprintBytes())
	w.m = growFloat64(w.m, stride)
	for k := 0; k < stride; k++ {
		w.m[k] = float64(w.counts[k]) / float64(e.opt.N)
	}
	return Combine(w.m, e.opt.C, n)
}

// High-water buffer helpers: reuse capacity, reallocate only on growth.

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growInt32Keep grows like growInt32 but preserves the existing prefix
// — the adaptive round loop extends the shared source grid in place
// round over round, so earlier rounds' walks must survive a realloc.
func growInt32Keep(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int32, n, max(n, 2*cap(s)))
	copy(out, s)
	return out
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func clearInt64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}

package core

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestAdaptiveDeterminism pins the adaptive determinism contract: the
// whole trajectory — estimate, radius, walks used, rounds committed —
// is bit-stable across Parallelism values, and the pair shape matches
// the single-candidate source shape exactly.
func TestAdaptiveDeterminism(t *testing.T) {
	g := testGraph()
	ao := AdaptiveOptions{Eps: 0.02, Delta: 0.05}
	for _, alg := range []Algorithm{AlgSampling, AlgSamplingV2, AlgTwoPhase, AlgSRSP} {
		run := func(par int) AdaptiveResult {
			e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: par})
			res, err := e.AdaptiveCompute(alg, 5, 17, ao)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1)
		for _, par := range []int{2, 4} {
			got := run(par)
			if got.Score != ref.Score || got.Radius != ref.Radius ||
				got.Walks != ref.Walks || got.Rounds != ref.Rounds ||
				got.Converged != ref.Converged || got.Partial != ref.Partial {
				t.Fatalf("%v: parallelism %d diverged: %+v vs %+v", alg, par, got, ref)
			}
		}
		// Pair vs source-with-one-candidate: same walk streams, same
		// chunk merge, identical trajectory.
		e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: 4})
		src, err := e.AdaptiveSingleSourceAgainstCtx(context.Background(), alg, 5, []int{17}, ao)
		if err != nil {
			t.Fatal(err)
		}
		if src.Scores[0] != ref.Score || src.Radius != ref.Radius ||
			src.Walks != ref.Walks || src.Rounds != ref.Rounds {
			t.Fatalf("%v: source shape diverged from pair: %+v vs %+v", alg, src, ref)
		}
	}
}

// TestAdaptiveEarlyStop is the point of the feature: at a modest ε the
// stopping rule needs far fewer walks than the Hoeffding cap, and the
// exact-prefix strategies (smaller score range c^(l+1)) converge at
// least as fast as the fully sampled ones.
func TestAdaptiveEarlyStop(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: 2})
	ao := AdaptiveOptions{Eps: 0.03, Delta: 0.05}
	res, err := e.AdaptiveCompute(AlgSamplingV2, 5, 17, ao)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Partial {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Radius > ao.Eps {
		t.Fatalf("radius %v above eps %v despite convergence", res.Radius, ao.Eps)
	}
	cap := res.Walks
	if res.Walks >= int64(e.Options().N) {
		t.Fatalf("early stop never triggered: %d walks ≥ fixed budget %d", res.Walks, e.Options().N)
	}
	tp, err := e.AdaptiveCompute(AlgTwoPhase, 5, 17, ao)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Converged || tp.Walks > cap {
		t.Fatalf("exact-prefix strategy slower than fully sampled: %+v vs %d walks", tp, cap)
	}
}

// TestAdaptiveExactStrategies: baseline (and an exact prefix covering
// every step) short-circuit to the exact score with a zero radius.
func TestAdaptiveExactStrategies(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 200, Seed: 3, Parallelism: 2})
	want, err := e.Baseline(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AdaptiveCompute(AlgBaseline, 4, 9, AdaptiveOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != want || res.Radius != 0 || !res.Converged || res.Walks != 0 {
		t.Fatalf("baseline adaptive = %+v, want exact %v", res, want)
	}
	// TwoPhase with L = Steps has an all-exact prefix.
	ef := newEngine(t, g, Options{N: 200, Steps: 3, L: 3, Seed: 3, Parallelism: 2})
	wantTP, err := ef.TwoPhase(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	resTP, err := ef.AdaptiveCompute(AlgTwoPhase, 4, 9, AdaptiveOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if resTP.Score != wantTP || resTP.Radius != 0 || !resTP.Converged {
		t.Fatalf("all-exact twophase adaptive = %+v, want %v", resTP, wantTP)
	}
	// Source shape too.
	src, err := e.AdaptiveSingleSourceAgainstCtx(context.Background(), AlgBaseline, 4, []int{9, 11}, AdaptiveOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if src.Scores[0] != want || !src.Converged {
		t.Fatalf("baseline adaptive source = %+v", src)
	}
}

// TestAdaptiveEstimateTracksFixed: the converged adaptive estimate is
// within its own radius plus sampling noise of the fixed-N estimator —
// both estimate the same truncated SimRank.
func TestAdaptiveEstimateTracksFixed(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 8000, Seed: 21, Parallelism: 2})
	fixed, err := e.SamplingV2(5, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AdaptiveCompute(AlgSamplingV2, 5, 17, AdaptiveOptions{Eps: 0.02, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-fixed) > res.Radius+0.02 {
		t.Fatalf("adaptive %v drifted from fixed %v (radius %v)", res.Score, fixed, res.Radius)
	}
}

// TestAdaptiveSourceSweep checks the multi-candidate shape: per-
// candidate scores match independent pair queries bit-for-bit when the
// sweep and the pairs use the same walk budget, and candidate freezing
// keeps every radius at or under the committed bound.
func TestAdaptiveSourceSweep(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: 4})
	candidates := []int{1, 17, 40, 63}
	// Pin the budget so every candidate runs the same fixed schedule.
	ao := AdaptiveOptions{Eps: 1e-9, Delta: 0.05, MinWalks: 256, MaxWalks: 1024}
	src, err := e.AdaptiveSingleSourceAgainstCtx(context.Background(), AlgSamplingV2, 5, candidates, ao)
	if err != nil {
		t.Fatal(err)
	}
	if src.Converged || src.Partial {
		t.Fatalf("unreachable eps should exhaust the budget: %+v", src)
	}
	if src.Walks != 1024 || src.Rounds != 3 {
		t.Fatalf("schedule: walks %d rounds %d, want 1024/3", src.Walks, src.Rounds)
	}
	for i, v := range candidates {
		pair, err := e.AdaptiveCompute(AlgSamplingV2, 5, v, ao)
		if err != nil {
			t.Fatal(err)
		}
		if src.Scores[i] != pair.Score {
			t.Fatalf("candidate %d: sweep %v != pair %v", v, src.Scores[i], pair.Score)
		}
	}
	// Empty candidate set is trivially converged.
	empty, err := e.AdaptiveSingleSourceAgainstCtx(context.Background(), AlgSamplingV2, 5, nil, ao)
	if err != nil || !empty.Converged || len(empty.Scores) != 0 {
		t.Fatalf("empty sweep: %+v, %v", empty, err)
	}
}

// TestAdaptiveIndexed: the adaptive indexed sweep converges to the
// non-adaptive indexed scores (same stored v-side occupancies, residual
// error bounded by the radius) and is deterministic across parallelism.
func TestAdaptiveIndexed(t *testing.T) {
	g := testGraph()
	run := func(par int) (AdaptiveResult, []float64) {
		e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: par})
		x := buildMemIndex(t, e)
		fixed, err := e.SingleSourceIndexed(x, 12)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.AdaptiveSingleSourceIndexedCtx(context.Background(), x, 12, AdaptiveOptions{Eps: 0.02, Delta: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		return res, fixed
	}
	ref, fixed := run(1)
	if !ref.Converged {
		t.Fatalf("indexed adaptive did not converge: %+v", ref)
	}
	for v, s := range ref.Scores {
		if math.Abs(s-fixed[v]) > ref.Radius+0.02 {
			t.Fatalf("vertex %d: adaptive %v vs indexed %v (radius %v)", v, s, fixed[v], ref.Radius)
		}
	}
	got, _ := run(4)
	if got.Walks != ref.Walks || got.Rounds != ref.Rounds || got.Radius != ref.Radius {
		t.Fatalf("indexed adaptive not deterministic: %+v vs %+v", got, ref)
	}
	for v := range ref.Scores {
		if got.Scores[v] != ref.Scores[v] {
			t.Fatalf("vertex %d: %v vs %v across parallelism", v, got.Scores[v], ref.Scores[v])
		}
	}
}

// TestAdaptivePartialDeadline: under a deadline that fits some but not
// all rounds of an unreachable ε, the query commits what it has and
// returns Partial=true with a nil error — the serving plane's graceful
// degradation contract.
func TestAdaptivePartialDeadline(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 4000, Seed: 21, Parallelism: 2})
	ao := AdaptiveOptions{Eps: 1e-12, Delta: 0.05, MaxWalks: adaptiveWalkCeiling}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	res, err := e.AdaptiveComputeCtx(ctx, AlgSamplingV2, 5, 17, ao)
	if err != nil {
		t.Fatalf("deadline-pressured adaptive errored: %v", err)
	}
	if !res.Partial || res.Converged {
		t.Fatalf("want partial result, got %+v", res)
	}
	if res.Rounds < 1 || res.Walks < 256 || res.Radius <= 0 {
		t.Fatalf("partial result carries no committed round: %+v", res)
	}

	// An already-cancelled context commits nothing and errors.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := e.AdaptiveComputeCtx(done, AlgSamplingV2, 5, 17, ao); err == nil {
		t.Fatal("cancelled context did not error")
	}
}

// TestAdaptiveValidation rejects malformed budgets up front.
func TestAdaptiveValidation(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 200, Seed: 3, Parallelism: 1})
	bad := []AdaptiveOptions{
		{Eps: 0},
		{Eps: -0.1},
		{Eps: math.Inf(1)},
		{Eps: 0.05, Delta: 1},
		{Eps: 0.05, Delta: -0.5},
		{Eps: 0.05, MinWalks: -1},
		{Eps: 0.05, MinWalks: 600, MaxWalks: 500},
	}
	for _, ao := range bad {
		if _, err := e.AdaptiveCompute(AlgSamplingV2, 0, 1, ao); err == nil {
			t.Fatalf("options %+v accepted", ao)
		}
	}
	if _, err := e.AdaptiveCompute(Algorithm(99), 0, 1, AdaptiveOptions{Eps: 0.05}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := e.AdaptiveCompute(AlgSamplingV2, -1, 1, AdaptiveOptions{Eps: 0.05}); err == nil {
		t.Fatal("bad vertex accepted")
	}
	if _, err := e.AdaptiveSingleSourceAgainstCtx(context.Background(), AlgSamplingV2, 0, []int{999999}, AdaptiveOptions{Eps: 0.05}); err == nil {
		t.Fatal("bad candidate accepted")
	}
}

// TestAdaptiveRoundSchedule pins the chunk-aligned doubling.
func TestAdaptiveRoundSchedule(t *testing.T) {
	for _, tc := range []struct {
		min, max int
		want     []int
	}{
		{256, 1024, []int{256, 512, 1024}},
		{256, 1000, []int{256, 512, 1024}}, // max aligned up to chunks
		{1, 1, []int{128}},
		{300, 700, []int{384, 768}},
		{1024, 512, []int{1024}}, // max below min: one round at min
	} {
		got := adaptiveRounds(tc.min, tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("adaptiveRounds(%d,%d) = %v, want %v", tc.min, tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("adaptiveRounds(%d,%d) = %v, want %v", tc.min, tc.max, got, tc.want)
			}
		}
	}
}

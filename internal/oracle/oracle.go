// Package oracle computes uncertain SimRank by literal possible-world
// enumeration — the ground truth the engine's four strategies are
// tested against.
//
// # What is enumerated, and why it is the measure
//
// The paper's measure (Sec. III, Definition 1) is built from k-step
// walk distributions on the uncertain graph:
//
//	m(k)(u,v) = Σ_w Pr(u →k w) · Pr(v →k w)
//	s(n)(u,v) = cⁿ·m(n) + (1−c)·Σ_{k<n} cᵏ·m(k)
//
// where Pr(u →k w) is the probability that a uniform backward random
// surfer starting at u sits at w after k steps — the expectation, over
// possible worlds G ⇒ G drawn per Eq. 4, of the per-world walk
// distribution. The u-side and v-side surfers sample their worlds
// independently, which is why m(k) is a product of two expectations
// rather than one expectation of a product.
//
// The oracle evaluates that expectation exhaustively: for every one of
// the 2^m possible worlds it runs the exact per-world SimRank walk
// iteration (a dense k-step distribution recurrence on the
// materialised world, uniform over the arcs that exist there), weights
// the resulting distribution by the world's probability, and sums.
// The walks run on the reversed graph, exactly as the engine's do —
// SimRank propagates similarity along in-arcs.
//
// # Enumeration bound
//
// Exhaustive enumeration is 2^m per source vertex, so the oracle
// refuses graphs with more than MaxArcs = 12 probabilistic arcs: 2^12
// = 4096 worlds keeps a full test sweep (tens of graphs × all sources
// × all levels) in milliseconds, while anything much larger grows
// exponentially useless. Twelve arcs is also comfortably past the
// point where the engine's machinery (state merging, lazy worlds,
// filter vectors) exhibits every behaviour it has; bigger graphs add
// cost, not coverage.
//
// # Relation to the engine
//
// The oracle shares no code with the engine's walk machinery: it is a
// dense map-based recurrence over explicitly materialised worlds,
// against the engine's sparse state-merged dynamic programming
// (internal/walkpr) and sampled estimators. Agreement is therefore
// evidence, not tautology. The test suite asserts:
//
//   - Baseline equals the oracle to floating-point roundoff (both are
//     exact algorithms for the same quantity);
//   - Sampling, SR-TS and SR-SP converge to the oracle within a
//     Hoeffding-style tolerance at their configured sample count;
//   - incremental Engine.ApplyUpdates answers are bit-identical to a
//     from-scratch rebuild on the mutated graph (the dynamic update
//     plane's core invariant), for all four algorithms and all five
//     query shapes.
package oracle

import (
	"fmt"
	"math"

	"usimrank/internal/ugraph"
)

// MaxArcs bounds exhaustive enumeration to 2^12 worlds; see the
// package comment for why the bound is this small on purpose.
const MaxArcs = 12

// checkGraph validates the enumeration bound.
func checkGraph(g *ugraph.Graph) error {
	if m := g.NumArcs(); m > MaxArcs {
		return fmt.Errorf("oracle: %d arcs exceed the enumeration bound %d (2^m worlds)", m, MaxArcs)
	}
	return nil
}

// WalkRows returns the exact k-step walk distributions rows[k][w] =
// Pr_g(src →k w) for k = 0..K by possible-world enumeration, following
// the arcs of g as given (no implicit reversal — SimRank callers pass
// the reversed graph; see SimRank).
func WalkRows(g *ugraph.Graph, src, K int) ([][]float64, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("oracle: source %d out of range [0,%d)", src, n)
	}
	rows := make([][]float64, K+1)
	for k := range rows {
		rows[k] = make([]float64, n)
	}
	var buf []int32
	cur := make([]float64, n)
	next := make([]float64, n)
	err := g.EnumerateWorlds(func(w ugraph.World, pr float64) {
		for i := range cur {
			cur[i] = 0
		}
		cur[src] = 1
		rows[0][src] += pr
		for k := 1; k <= K; k++ {
			for i := range next {
				next[i] = 0
			}
			for v, pv := range cur {
				if pv == 0 {
					continue
				}
				buf = w.Out(v, buf[:0])
				if len(buf) == 0 {
					continue // the surfer falls off a dead end
				}
				share := pv / float64(len(buf))
				for _, o := range buf {
					next[o] += share
				}
			}
			for i, pv := range next {
				rows[k][i] += pr * pv
			}
			cur, next = next, cur
		}
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// MeetingProbabilities returns m(k)(u, v) for k = 0..K: the dot product
// of the two sources' enumerated walk rows on the reversed graph.
func MeetingProbabilities(g *ugraph.Graph, u, v, K int) ([]float64, error) {
	rev := g.Reverse()
	ru, err := WalkRows(rev, u, K)
	if err != nil {
		return nil, err
	}
	rv := ru
	if v != u {
		if rv, err = WalkRows(rev, v, K); err != nil {
			return nil, err
		}
	}
	m := make([]float64, K+1)
	for k := 0; k <= K; k++ {
		for w := range ru[k] {
			m[k] += ru[k][w] * rv[k][w]
		}
	}
	return m, nil
}

// SimRank returns the exact s(n)(u, v) of Definition 1 with decay c,
// combining the enumerated meeting probabilities per Eq. 12.
func SimRank(g *ugraph.Graph, u, v int, c float64, n int) (float64, error) {
	m, err := MeetingProbabilities(g, u, v, n)
	if err != nil {
		return 0, err
	}
	s := math.Pow(c, float64(n)) * m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s, nil
}

package oracle

import (
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/index"
	"usimrank/internal/rng"
)

// TestIndexedConvergesToOracle pins the index-probe estimator to the
// enumerated ground truth. The indexed path estimates each meeting
// probability as the dot product of two independently sampled occupancy
// histograms, m̂(k)(u,v) = ⟨occ_u[k], occ_v[k]⟩ — the same two-sample
// mean of N² {0,1} indicators the Sampling algorithm averages, grouped
// differently — so it is unbiased for the oracle's measure with
// variance no larger than Sampling's at equal N. The Hoeffding budget
// of TestSampledAlgorithmsConvergeToOracle therefore transfers: with
// N = 4000 and ε = 0.06 a level miss is ≲10⁻¹² likely, and the fixed
// seed makes the run deterministic anyway. DAG graphs for the same
// reason as the sampled sweep: on a DAG every sampled strategy shares
// the Sampling distribution.
func TestIndexedConvergesToOracle(t *testing.T) {
	r := rng.New(1618)
	const (
		steps = 5
		N     = 4000
		eps   = 0.06
	)
	for trial := 0; trial < 10; trial++ {
		g := randSmallDAG(r)
		e, err := core.NewEngine(g, core.Options{Steps: steps, N: N, L: 1, Seed: uint64(100 + trial), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		x, err := index.Build(e)
		if err != nil {
			t.Fatal(err)
		}
		opt := e.Options()
		for q := 0; q < 3; q++ {
			u := r.Intn(g.NumVertices())
			scores, err := e.SingleSourceIndexed(x, u)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				want, err := SimRank(g, u, v, opt.C, steps)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(scores[v]-want) > eps {
					t.Fatalf("trial %d: indexed s(%d,%d) = %v, oracle %v (|diff| %.4f > ε=%.2f)",
						trial, u, v, scores[v], want, math.Abs(scores[v]-want), eps)
				}
			}
		}
	}
}

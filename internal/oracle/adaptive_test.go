package oracle

import (
	"context"
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/index"
	"usimrank/internal/rng"
)

// TestAdaptiveConvergesToOracle pins the adaptive (ε, δ) estimator to
// the enumerated ground truth across possible-world graphs: for every
// sampled strategy the converged estimate must sit within ε of the
// oracle score. The stopping rule guarantees |ŝ − E ŝ| ≤ radius ≤ ε
// with probability 1−δ, and on DAGs every sampled strategy is unbiased
// for the oracle's measure (same argument as the fixed-N sweep), so
// with δ = 10⁻⁶ a level miss across the whole sweep (10 graphs × 2
// pairs × 4 strategies) is ≲10⁻⁴ likely — and the fixed seeds make the
// run deterministic anyway. The walks-used assertion is the point of
// the feature: the stopping rule must finish these easy pairs with
// strictly fewer walks than the engine's fixed budget.
func TestAdaptiveConvergesToOracle(t *testing.T) {
	r := rng.New(1618)
	const (
		steps = 5
		N     = 4000
		eps   = 0.05
	)
	ao := core.AdaptiveOptions{Eps: eps, Delta: 1e-6}
	algs := []core.Algorithm{core.AlgSampling, core.AlgTwoPhase, core.AlgSRSP, core.AlgSamplingV2}
	var walks, fixed int64
	for trial := 0; trial < 10; trial++ {
		g := randSmallDAG(r)
		e, err := core.NewEngine(g, core.Options{Steps: steps, N: N, L: 1, Seed: uint64(100 + trial), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		opt := e.Options()
		for q := 0; q < 2; q++ {
			u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
			want, err := SimRank(g, u, v, opt.C, steps)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range algs {
				res, err := e.AdaptiveCompute(alg, u, v, ao)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged || res.Partial {
					t.Fatalf("trial %d %v: s(%d,%d) did not converge: %+v", trial, alg, u, v, res)
				}
				if res.Radius > eps {
					t.Fatalf("trial %d %v: converged with radius %v > ε=%v", trial, alg, res.Radius, eps)
				}
				if math.Abs(res.Score-want) > eps {
					t.Fatalf("trial %d %v: adaptive s(%d,%d) = %v, oracle %v (|diff| %.4f > ε=%.2f)",
						trial, alg, u, v, res.Score, want, math.Abs(res.Score-want), eps)
				}
				if res.Walks >= int64(N) {
					t.Fatalf("trial %d %v: no early stop: %d walks ≥ fixed budget %d", trial, alg, res.Walks, N)
				}
				walks += res.Walks
				fixed += int64(N)
			}
		}
	}
	// Aggregate early-stopping margin: across the sweep the adaptive
	// path must spend well under half the fixed-N walk budget, or the
	// stopping rule is not earning its keep.
	if walks*2 >= fixed {
		t.Fatalf("adaptive spent %d walks vs fixed budget %d: early stopping is not effective", walks, fixed)
	}
	t.Logf("adaptive walks %d vs fixed %d (%.1f%%)", walks, fixed, 100*float64(walks)/float64(fixed))
}

// TestAdaptiveIndexedConvergesToOracle covers the indexed residual
// path: the adaptive sweep against a prebuilt reverse-walk index must
// land every vertex of the source row within ε of the enumerated truth
// once converged, with the same early-stopping requirement. The
// stopping rule bounds only the residual-sampling side; the stored
// v-side occupancies carry the index's own build-time noise, bounded
// by the per-level Hoeffding term of TestIndexedConvergesToOracle
// (≤ 0.03 at N = 4000 with failure mass ≲10⁻¹²), so the oracle
// tolerance is ε plus that stored-side allowance.
func TestAdaptiveIndexedConvergesToOracle(t *testing.T) {
	r := rng.New(1618)
	const (
		steps  = 5
		N      = 4000
		eps    = 0.05
		stored = 0.03 // index build-time noise allowance
	)
	ao := core.AdaptiveOptions{Eps: eps, Delta: 1e-6}
	for trial := 0; trial < 6; trial++ {
		g := randSmallDAG(r)
		e, err := core.NewEngine(g, core.Options{Steps: steps, N: N, L: 1, Seed: uint64(100 + trial), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		x, err := index.Build(e)
		if err != nil {
			t.Fatal(err)
		}
		opt := e.Options()
		u := r.Intn(g.NumVertices())
		res, err := e.AdaptiveSingleSourceIndexedCtx(context.Background(), x, u, ao)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Partial {
			t.Fatalf("trial %d: indexed adaptive did not converge: %+v", trial, res)
		}
		if res.Walks >= int64(N) {
			t.Fatalf("trial %d: no early stop: %d walks ≥ fixed budget %d", trial, res.Walks, N)
		}
		for v := 0; v < g.NumVertices(); v++ {
			want, err := SimRank(g, u, v, opt.C, steps)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Scores[v]-want) > eps+stored {
				t.Fatalf("trial %d: indexed adaptive s(%d,%d) = %v, oracle %v (|diff| %.4f > ε+stored=%.2f)",
					trial, u, v, res.Scores[v], want, math.Abs(res.Scores[v]-want), eps+stored)
			}
		}
	}
}

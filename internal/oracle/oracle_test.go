package oracle

import (
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// randSmallGraph draws a general digraph (cycles and self-loops
// allowed) with 4–7 vertices and at most MaxArcs probabilistic arcs.
func randSmallGraph(r *rng.RNG) *ugraph.Graph {
	for {
		n := 4 + r.Intn(4)
		b := ugraph.NewBuilder(n)
		target := 6 + r.Intn(MaxArcs-5) // 6..12 arcs
		seen := map[[2]int]bool{}
		for b.NumArcs() < target && len(seen) < n*n {
			u, v := r.Intn(n), r.Intn(n)
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddArc(u, v, 0.1+0.85*r.Float64())
		}
		if b.NumArcs() > 0 {
			return b.MustBuild()
		}
	}
}

// randSmallDAG draws a DAG (arcs only from lower to higher vertex) with
// at most MaxArcs arcs. On a DAG no walk can revisit a vertex, so the
// SR-SP filter-vector estimator has exactly the Sampling algorithm's
// distribution (see the fidelity note in package speedup) and all
// three sampled strategies are unbiased for the oracle's measure.
func randSmallDAG(r *rng.RNG) *ugraph.Graph {
	for {
		n := 5 + r.Intn(3)
		b := ugraph.NewBuilder(n)
		seen := map[[2]int]bool{}
		target := 6 + r.Intn(MaxArcs-5)
		for b.NumArcs() < target && len(seen) < n*(n-1)/2 {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddArc(u, v, 0.1+0.85*r.Float64())
		}
		if b.NumArcs() > 0 {
			return b.MustBuild()
		}
	}
}

// TestBaselineMatchesOracle: the engine's exact algorithm and the
// enumeration oracle compute the same measure through entirely
// different machinery (state-merged sparse DP vs dense per-world
// recurrence), so agreement to roundoff on general graphs — cycles,
// self-loops, dead ends — is the strongest correctness statement the
// suite makes about the exact path.
func TestBaselineMatchesOracle(t *testing.T) {
	r := rng.New(2718)
	const steps = 5
	for trial := 0; trial < 10; trial++ {
		g := randSmallGraph(r)
		e, err := core.NewEngine(g, core.Options{Steps: steps, N: 10, Seed: 3, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		opt := e.Options()
		for q := 0; q < 4; q++ {
			u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
			want, err := SimRank(g, u, v, opt.C, steps)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: Baseline s(%d,%d) = %.15g, oracle %.15g (diff %g)",
					trial, u, v, got, want, got-want)
			}
		}
		// Per-level meeting probabilities too, not just the combined
		// score — a cancellation in Combine must not mask a level bug.
		u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
		wantM, err := MeetingProbabilities(g, u, v, steps)
		if err != nil {
			t.Fatal(err)
		}
		gotM, err := e.MeetingExact(u, v, steps)
		if err != nil {
			t.Fatal(err)
		}
		for k := range wantM {
			if math.Abs(gotM[k]-wantM[k]) > 1e-12 {
				t.Fatalf("trial %d: m(%d)(%d,%d) = %.15g, oracle %.15g", trial, k, u, v, gotM[k], wantM[k])
			}
		}
	}
}

// TestSampledAlgorithmsConvergeToOracle: each approximate strategy must
// land within a Hoeffding-style tolerance of the enumerated ground
// truth. Each m̂(k) is the mean of N {0,1} indicators, so
// Pr(|m̂(k) − m(k)| > ε) ≤ 2·exp(−2Nε²); with N = 4000 and ε = 0.06
// that is ≈ 6·10⁻¹³ per level, and the Eq. 12 weights sum to exactly 1,
// so |ŝ − s| ≤ max_k |m̂(k) − m(k)| ≤ ε with failure probability below
// 10⁻⁹ across the whole sweep (10 graphs × 3 pairs × 4 algorithms × 6
// levels) — and the fixed seed makes the run deterministic anyway.
// SamplingV2 consumes randomness differently from Sampling but draws
// from the same per-walk possible-world distribution, so the identical
// Hoeffding bound pins it.
//
// The graphs are DAGs so that SR-SP's fixed-per-process arc choices
// coincide in distribution with the Sampling algorithm's re-rolled
// choices (no walk can revisit a vertex); the exact path is covered on
// loopy graphs by TestBaselineMatchesOracle.
func TestSampledAlgorithmsConvergeToOracle(t *testing.T) {
	r := rng.New(1618)
	const (
		steps = 5
		N     = 4000
		eps   = 0.06
	)
	algs := []core.Algorithm{core.AlgSampling, core.AlgTwoPhase, core.AlgSRSP, core.AlgSamplingV2}
	for trial := 0; trial < 10; trial++ {
		g := randSmallDAG(r)
		e, err := core.NewEngine(g, core.Options{Steps: steps, N: N, L: 1, Seed: uint64(100 + trial), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		opt := e.Options()
		for q := 0; q < 3; q++ {
			u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
			want, err := SimRank(g, u, v, opt.C, steps)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range algs {
				got, err := e.Compute(alg, u, v)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > eps {
					t.Fatalf("trial %d %v: s(%d,%d) = %v, oracle %v (|diff| %.4f > ε=%.2f)",
						trial, alg, u, v, got, want, math.Abs(got-want), eps)
				}
			}
		}
	}
}

// TestOracleRefusesLargeGraphs pins the enumeration bound.
func TestOracleRefusesLargeGraphs(t *testing.T) {
	b := ugraph.NewBuilder(MaxArcs + 2)
	for i := 0; i < MaxArcs+1; i++ {
		b.AddArc(i, i+1, 0.5)
	}
	g := b.MustBuild()
	if _, err := WalkRows(g, 0, 2); err == nil {
		t.Fatal("oracle enumerated past MaxArcs")
	}
	if _, err := SimRank(g, 0, 1, 0.6, 2); err == nil {
		t.Fatal("SimRank enumerated past MaxArcs")
	}
}

// TestWalkRowsAreSubstochastic sanity-checks the enumerated rows: level
// masses are probabilities, and level 0 is the unit vector.
func TestWalkRowsAreSubstochastic(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		g := randSmallGraph(r)
		src := r.Intn(g.NumVertices())
		rows, err := WalkRows(g, src, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Level 0 is the unit vector at src, up to the roundoff of
		// summing 2^m world probabilities.
		if math.Abs(rows[0][src]-1) > 1e-9 {
			t.Fatalf("row 0 not unit: %v", rows[0])
		}
		for w, p := range rows[0] {
			if w != src && p != 0 {
				t.Fatalf("row 0 has mass %v at %d != src %d", p, w, src)
			}
		}
		for k, row := range rows {
			sum := 0.0
			for _, p := range row {
				if p < -1e-15 || p > 1+1e-12 {
					t.Fatalf("level %d has probability %v", k, p)
				}
				sum += p
			}
			if sum > 1+1e-9 {
				t.Fatalf("level %d mass %v > 1", k, sum)
			}
		}
	}
}

package oracle

import (
	"testing"

	"usimrank"
	"usimrank/internal/rng"
)

// randMidGraph draws a digraph big enough that the row cache, the
// invalidation BFS and the filter patch all have real work (no
// enumeration here, so no arc bound).
func randMidGraph(r *rng.RNG, n int, arcs int) *usimrank.Graph {
	b := usimrank.NewBuilder(n)
	seen := map[[2]int]bool{}
	for b.NumArcs() < arcs {
		u, v := r.Intn(n), r.Intn(n)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddArc(u, v, 0.05+0.9*r.Float64())
	}
	return b.MustBuild()
}

// stageableBatch draws a mixed valid update batch against g.
func stageableBatch(r *rng.RNG, g *usimrank.Graph, count int) []usimrank.ArcUpdate {
	var ups []usimrank.ArcUpdate
	state := map[[2]int]bool{}
	exists := func(u, v int) bool {
		if st, ok := state[[2]int{u, v}]; ok {
			return st
		}
		return g.HasArc(u, v)
	}
	for len(ups) < count {
		u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
		if exists(u, v) {
			if r.Bool(0.5) {
				ups = append(ups, usimrank.ArcUpdate{Op: usimrank.OpDelete, U: u, V: v})
				state[[2]int{u, v}] = false
			} else {
				ups = append(ups, usimrank.ArcUpdate{Op: usimrank.OpReweight, U: u, V: v, P: 0.05 + 0.9*r.Float64()})
				state[[2]int{u, v}] = true
			}
		} else {
			ups = append(ups, usimrank.ArcUpdate{Op: usimrank.OpInsert, U: u, V: v, P: 0.05 + 0.9*r.Float64()})
			state[[2]int{u, v}] = true
		}
	}
	return ups
}

// TestApplyUpdatesEquivalentAcrossAllShapes is the dynamic update
// plane's acceptance pin: after an incremental ApplyUpdates, every
// algorithm × every query shape — pairwise score, single-source,
// top-k (per-source and all-pairs), batch, and the SR-SP matrix sweep
// — returns bits identical to a from-scratch engine built on the
// mutated graph. The predecessor engine is warmed first (rows at both
// exact depths, filter pools, top-k sweeps), so retained state — not
// just recomputation — is what is being compared.
func TestApplyUpdatesEquivalentAcrossAllShapes(t *testing.T) {
	r := rng.New(60221)
	for _, optCase := range []struct {
		name string
		opt  usimrank.Options
	}{
		{"two-phase l=1", usimrank.Options{Steps: 4, N: 160, L: 1, Seed: 17, Parallelism: 2, RowCacheSize: 128}},
		{"all-exact l=n", usimrank.Options{Steps: 3, N: 80, L: 3, Seed: 23, Parallelism: 2, RowCacheSize: 128}},
	} {
		t.Run(optCase.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				g := randMidGraph(r, 40+r.Intn(30), 150+r.Intn(100))
				e, err := usimrank.New(g, optCase.opt)
				if err != nil {
					t.Fatal(err)
				}
				// Warm every substrate on the predecessor.
				e.WarmFilters()
				warm := make([]int, g.NumVertices())
				for i := range warm {
					warm[i] = i
				}
				if err := e.WarmRowsFor(usimrank.AlgBaseline, warm[:len(warm)/2]); err != nil {
					t.Fatal(err)
				}
				if err := e.WarmRowsFor(usimrank.AlgTwoPhase, warm[len(warm)/2:]); err != nil {
					t.Fatal(err)
				}
				if _, err := usimrank.TopKSimilar(e, usimrank.AlgSRSP, 0, 3); err != nil {
					t.Fatal(err)
				}

				ups := stageableBatch(r, g, 1+r.Intn(5))
				derived, stats, err := e.ApplyUpdates(ups)
				if err != nil {
					t.Fatalf("trial %d: %v (batch %+v)", trial, err, ups)
				}
				rebuilt, err := usimrank.New(derived.Graph(), optCase.opt)
				if err != nil {
					t.Fatal(err)
				}

				for _, alg := range usimrank.Algorithms() {
					// Shape 1: pairwise score.
					for q := 0; q < 5; q++ {
						u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
						got, err := derived.Compute(alg, u, v)
						if err != nil {
							t.Fatal(err)
						}
						want, err := rebuilt.Compute(alg, u, v)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("trial %d %v score(%d,%d): derived %v, rebuilt %v (stats %+v)",
								trial, alg, u, v, got, want, stats)
						}
					}
					// Shape 2: single-source (full sweep).
					src := r.Intn(g.NumVertices())
					gotSS, err := derived.SingleSource(alg, src)
					if err != nil {
						t.Fatal(err)
					}
					wantSS, err := rebuilt.SingleSource(alg, src)
					if err != nil {
						t.Fatal(err)
					}
					for i := range wantSS {
						if gotSS[i] != wantSS[i] {
							t.Fatalf("trial %d %v source(%d)[%d]: %v vs %v", trial, alg, src, i, gotSS[i], wantSS[i])
						}
					}
					// Shape 3: top-k, both flavours.
					gotTK, err := usimrank.TopKSimilar(derived, alg, src, 4)
					if err != nil {
						t.Fatal(err)
					}
					wantTK, err := usimrank.TopKSimilar(rebuilt, alg, src, 4)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotTK) != len(wantTK) {
						t.Fatalf("trial %d %v topk(%d): %d vs %d results", trial, alg, src, len(gotTK), len(wantTK))
					}
					for i := range wantTK {
						if gotTK[i] != wantTK[i] {
							t.Fatalf("trial %d %v topk(%d)[%d]: %+v vs %+v", trial, alg, src, i, gotTK[i], wantTK[i])
						}
					}
					gotTP, err := usimrank.TopKPairs(derived, alg, 3)
					if err != nil {
						t.Fatal(err)
					}
					wantTP, err := usimrank.TopKPairs(rebuilt, alg, 3)
					if err != nil {
						t.Fatal(err)
					}
					for i := range wantTP {
						if gotTP[i] != wantTP[i] {
							t.Fatalf("trial %d %v topkpairs[%d]: %+v vs %+v", trial, alg, i, gotTP[i], wantTP[i])
						}
					}
					// Shape 4: batch (grouped by source inside the engine).
					pairs := [][2]int{{src, 0}, {src, 1}, {0, src}, {2, 3}}
					gotB := usimrank.Batch(derived, alg, pairs, 0)
					wantB := usimrank.Batch(rebuilt, alg, pairs, 0)
					for i := range wantB {
						if gotB[i].Value != wantB[i].Value {
							t.Fatalf("trial %d %v batch[%d]: %v vs %v", trial, alg, i, gotB[i].Value, wantB[i].Value)
						}
					}
				}
				// Shape 5: the SR-SP matrix sweep.
				verts := []int{0, 1, 2, 3, 4}
				gotM, err := derived.SRSPMatrix(verts)
				if err != nil {
					t.Fatal(err)
				}
				wantM, err := rebuilt.SRSPMatrix(verts)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantM {
					for j := range wantM[i] {
						if gotM[i][j] != wantM[i][j] {
							t.Fatalf("trial %d SRSPMatrix[%d][%d]: %v vs %v", trial, i, j, gotM[i][j], wantM[i][j])
						}
					}
				}
				// Chained derivation: a second batch on the derived engine
				// must keep the invariant.
				ups2 := stageableBatch(r, derived.Graph(), 2)
				derived2, _, err := derived.ApplyUpdates(ups2)
				if err != nil {
					t.Fatal(err)
				}
				rebuilt2, err := usimrank.New(derived2.Graph(), optCase.opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := derived2.Compute(usimrank.AlgSRSP, 1, 2)
				if err != nil {
					t.Fatal(err)
				}
				want, err := rebuilt2.Compute(usimrank.AlgSRSP, 1, 2)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d chained: %v vs %v", trial, got, want)
				}
			}
		})
	}
}

package exp

import (
	"errors"
	"fmt"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/walkpr"
)

// Fig8Curve is one dataset's convergence curve: the average and maximum
// SimRank iterate s(n) over sampled pairs, for n = 1..len(Avg).
type Fig8Curve struct {
	Dataset string
	Avg     []float64
	Max     []float64
	// TruncatedAt > 0 records that the exact computation exceeded its
	// state budget beyond this n (dense datasets at high n).
	TruncatedAt int
}

// Fig8Result holds all convergence curves.
type Fig8Result struct {
	MaxN   int
	Curves []Fig8Curve
}

// Fig8Convergence reproduces Fig. 8: the SimRank iterates s(n) for
// n = 1..10 computed exactly, showing convergence by n ≈ 5.
func Fig8Convergence(cfg Config) (*Fig8Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig8Result{MaxN: p.fig8MaxN}
	fmt.Fprintf(cfg.Out, "Fig. 8 — convergence of s(n) (%d pairs, n = 1..%d)\n", p.fig8Pairs, p.fig8MaxN)

	for _, name := range []string{"PPI1*", "PPI2*", "Net*", "Condmat*"} {
		d, err := gen.ByName(cfg.Scale, name)
		if err != nil {
			return nil, err
		}
		g := d.Build(cfg.Seed)
		engine, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
		if err != nil {
			return nil, err
		}
		r := rng.New(cfg.Seed + 11)
		pairs := randomPairs(g.NumVertices(), p.fig8Pairs, r)

		curve := Fig8Curve{Dataset: name}
		// Find the largest n all pairs can afford, walking down on state
		// explosions.
		maxN := p.fig8MaxN
		var series [][]float64
		for maxN >= 1 {
			series = series[:0]
			explosion := false
			for _, pair := range pairs {
				s, err := engine.Series(pair[0], pair[1], maxN)
				if errors.Is(err, walkpr.ErrStateExplosion) {
					explosion = true
					break
				}
				if err != nil {
					return nil, err
				}
				series = append(series, s)
			}
			if !explosion {
				break
			}
			curve.TruncatedAt = maxN
			maxN--
		}
		if maxN < 1 {
			return nil, fmt.Errorf("exp: %s too dense for any exact iteration", name)
		}
		for n := 1; n <= maxN; n++ {
			col := make([]float64, len(series))
			for i := range series {
				col[i] = series[i][n]
			}
			st := summarize(col)
			curve.Avg = append(curve.Avg, st.Avg)
			curve.Max = append(curve.Max, st.Max)
		}
		res.Curves = append(res.Curves, curve)

		fmt.Fprintf(cfg.Out, "  %-10s avg:", name)
		for _, v := range curve.Avg {
			fmt.Fprintf(cfg.Out, " %.4f", v)
		}
		if curve.TruncatedAt > 0 {
			fmt.Fprintf(cfg.Out, "  (exact method truncated at n=%d)", maxN)
		}
		fmt.Fprintln(cfg.Out)
		fmt.Fprintf(cfg.Out, "  %-10s max:", "")
		for _, v := range curve.Max {
			fmt.Fprintf(cfg.Out, " %.4f", v)
		}
		fmt.Fprintln(cfg.Out)
	}
	return res, nil
}

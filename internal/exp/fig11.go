package exp

import (
	"fmt"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

// NSweepPoint is one x-position of Fig. 11: sample count N against mean
// per-query time and mean relative error, for SR-TS and SR-SP.
type NSweepPoint struct {
	N        int
	TSTime   time.Duration
	SPTime   time.Duration
	TSRelErr float64
	SPRelErr float64
}

// Fig11Result holds the sweep.
type Fig11Result struct {
	Dataset string
	Points  []NSweepPoint
}

// Fig11NSweep reproduces Fig. 11: the effect of the number of sampled
// walks N on the execution time and relative error of SR-TS and SR-SP
// on the Condmat*-like dataset, with l = 1.
func Fig11NSweep(cfg Config) (*Fig11Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	d, err := gen.ByName(cfg.Scale, "Condmat*")
	if err != nil {
		return nil, err
	}
	g := d.Build(cfg.Seed)
	r := rng.New(cfg.Seed + 17)
	pairs := randomPairs(g.NumVertices(), p.pairs, r)

	exact, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
	if err != nil {
		return nil, err
	}
	refs := make([]float64, len(pairs))
	for i, pair := range pairs {
		if refs[i], err = exact.Baseline(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}

	res := &Fig11Result{Dataset: d.Name}
	fmt.Fprintf(cfg.Out, "Fig. 11 — effect of N on %s (l=1, %d pairs)\n", d.Name, p.pairs)
	fmt.Fprintf(cfg.Out, "  %-6s %-12s %-12s %-10s %-10s\n", "N", "SR-TS time", "SR-SP time", "TS err", "SP err")

	for _, n := range p.nSweep {
		ets, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: 1, N: n}))
		if err != nil {
			return nil, err
		}
		tsVals := make([]float64, len(pairs))
		tsTime := stopwatch(len(pairs), func(i int) {
			v, err := ets.TwoPhase(pairs[i][0], pairs[i][1])
			if err != nil {
				panic(err)
			}
			tsVals[i] = v
		})

		esp, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: 1, N: n}))
		if err != nil {
			return nil, err
		}
		if _, err := esp.SRSP(pairs[0][0], pairs[0][1]); err != nil { // offline pools
			return nil, err
		}
		spVals := make([]float64, len(pairs))
		spTime := stopwatch(len(pairs), func(i int) {
			v, err := esp.SRSP(pairs[i][0], pairs[i][1])
			if err != nil {
				panic(err)
			}
			spVals[i] = v
		})

		pt := NSweepPoint{
			N:        n,
			TSTime:   tsTime,
			SPTime:   spTime,
			TSRelErr: meanRelErr(tsVals, refs),
			SPRelErr: meanRelErr(spVals, refs),
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(cfg.Out, "  %-6d %-12v %-12v %-10.4f %-10.4f\n",
			n, pt.TSTime, pt.SPTime, pt.TSRelErr, pt.SPRelErr)
	}
	return res, nil
}

package exp

import (
	"fmt"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/er"
	"usimrank/internal/rng"
)

// ERTimePoint is one x-position of Fig. 15: record count against total
// resolution time per algorithm.
type ERTimePoint struct {
	Records int
	Times   map[string]time.Duration
}

// Fig15Result holds the ER execution-time sweep.
type Fig15Result struct {
	Points []ERTimePoint
}

// erOptions returns the SimRank engine options of the case study
// (sampling with the speed-up, as the paper states).
func erOptions(seed uint64) core.Options {
	return core.Options{Seed: seed, N: 500, Steps: 4}
}

// Fig15ERTime reproduces Fig. 15: execution time of DISTINCT, EIF,
// SimER and SimDER as the record corpus grows.
func Fig15ERTime(cfg Config) (*Fig15Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig15Result{}
	fmt.Fprintf(cfg.Out, "Fig. 15 — ER execution time vs record size\n")
	fmt.Fprintf(cfg.Out, "  %-8s %-12s %-12s %-12s %-12s\n", "records", "DISTINCT", "EIF", "SimER", "SimDER")

	algos := []er.Resolver{er.DISTINCT, er.EIF, er.SimER, er.SimDER}
	for _, count := range p.erSweep {
		ds := er.Generate(er.Config{}, count, rng.New(cfg.Seed+23))
		names, blocks := er.Blocks(ds)
		pt := ERTimePoint{Records: len(ds.Records), Times: make(map[string]time.Duration)}
		for _, alg := range algos {
			start := time.Now()
			for _, name := range names {
				if _, err := er.Resolve(alg, blocks[name], er.Thresholds{}, erOptions(cfg.Seed)); err != nil {
					return nil, err
				}
			}
			pt.Times[alg.String()] = time.Since(start)
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(cfg.Out, "  %-8d %-12v %-12v %-12v %-12v\n", pt.Records,
			pt.Times["DISTINCT"], pt.Times["EIF"], pt.Times["SimER"], pt.Times["SimDER"])
	}
	return res, nil
}

// Table5Row is one row of the paper's Table V: per-name precision,
// recall and F1 of one resolver.
type Table5Row struct {
	Name      string
	Resolver  string
	Precision float64
	Recall    float64
	F1        float64
}

// Table5Result holds the ER quality comparison (and the Table IV name
// statistics).
type Table5Result struct {
	// NameAuthors and NameRecords are the Table IV columns.
	NameAuthors map[string]int
	NameRecords map[string]int
	Rows        []Table5Row
	// Averages[resolver] = (precision, recall, F1) averaged over names.
	Averages map[string][3]float64
}

// Table5ERQuality reproduces Tables IV and V: per-ambiguous-name
// precision/recall/F1 of SimER, SimDER, EIF and DISTINCT.
func Table5ERQuality(cfg Config) (*Table5Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	ds := er.Generate(er.Config{}, p.erRecords, rng.New(cfg.Seed+23))
	names, blocks := er.Blocks(ds)

	res := &Table5Result{
		NameAuthors: make(map[string]int),
		NameRecords: make(map[string]int),
		Averages:    make(map[string][3]float64),
	}
	authorsOf := make(map[string]map[int]bool)
	for _, rec := range ds.Records {
		if authorsOf[rec.Name] == nil {
			authorsOf[rec.Name] = make(map[int]bool)
		}
		authorsOf[rec.Name][rec.AuthorID] = true
	}
	fmt.Fprintf(cfg.Out, "Table IV — ambiguous names\n")
	for _, name := range names {
		res.NameAuthors[name] = len(authorsOf[name])
		res.NameRecords[name] = len(blocks[name])
		fmt.Fprintf(cfg.Out, "  %-16s #authors=%-3d #records=%d\n", name, res.NameAuthors[name], res.NameRecords[name])
	}

	fmt.Fprintf(cfg.Out, "Table V — ER quality (precision / recall / F1)\n")
	fmt.Fprintf(cfg.Out, "  %-16s %-10s %-8s %-8s %-8s\n", "name", "resolver", "P", "R", "F1")
	algos := []er.Resolver{er.SimER, er.SimDER, er.EIF, er.DISTINCT}
	sums := make(map[string][3]float64)
	for _, name := range names {
		block := blocks[name]
		truth := er.BlockTruth(block)
		for _, alg := range algos {
			clusters, err := er.Resolve(alg, block, er.Thresholds{}, erOptions(cfg.Seed))
			if err != nil {
				return nil, err
			}
			prec, rec, f1 := er.PairwisePRF(clusters, truth)
			res.Rows = append(res.Rows, Table5Row{
				Name: name, Resolver: alg.String(), Precision: prec, Recall: rec, F1: f1,
			})
			s := sums[alg.String()]
			s[0] += prec
			s[1] += rec
			s[2] += f1
			sums[alg.String()] = s
			fmt.Fprintf(cfg.Out, "  %-16s %-10s %-8.3f %-8.3f %-8.3f\n", name, alg, prec, rec, f1)
		}
	}
	for algo, s := range sums {
		res.Averages[algo] = [3]float64{s[0] / float64(len(names)), s[1] / float64(len(names)), s[2] / float64(len(names))}
	}
	fmt.Fprintf(cfg.Out, "  averages:\n")
	for _, alg := range algos {
		a := res.Averages[alg.String()]
		fmt.Fprintf(cfg.Out, "  %-16s %-10s %-8.3f %-8.3f %-8.3f\n", "(all)", alg, a[0], a[1], a[2])
	}
	return res, nil
}

package exp

import (
	"fmt"

	"usimrank/internal/core"
	"usimrank/internal/detsim"
	"usimrank/internal/dusim"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/simmeasure"
)

// Measure names for the Fig. 7 / Table III comparison, matching the
// paper's labels.
const (
	MeasureSimRankI   = "SimRank-I"   // the paper's measure (this work)
	MeasureSimRankII  = "SimRank-II"  // SimRank with uncertainty removed
	MeasureSimRankIII = "SimRank-III" // Du et al.'s W(k)=W(1)^k measure
	MeasureJaccardI   = "Jaccard-I"   // expected Jaccard on the uncertain graph
	MeasureJaccardII  = "Jaccard-II"  // Jaccard with uncertainty removed
)

// BiasStats is one Table III row: the distribution of |measure −
// SimRank-I| over sampled pairs after min-max normalisation.
type BiasStats struct {
	Dataset string
	Measure string
	Avg     float64
	Max     float64
	Min     float64
}

// Fig7Result holds the Table III rows and, per dataset, the normalised
// similarity series in decreasing SimRank-I order (the Fig. 7 curves).
type Fig7Result struct {
	Rows []BiasStats
	// Series[dataset][measure] is aligned with Series[dataset][SimRank-I]
	// sorted descending.
	Series map[string]map[string][]float64
}

// Fig7Table3Bias reproduces Fig. 7 and Table III: on Net*- and
// PPI1*-like graphs, compare SimRank-I with the four alternative
// measures over randomly selected vertex pairs.
func Fig7Table3Bias(cfg Config) (*Fig7Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig7Result{Series: make(map[string]map[string][]float64)}

	fmt.Fprintf(cfg.Out, "Table III — differences between SimRank-I and other measures (%d pairs)\n", p.pairs)
	fmt.Fprintf(cfg.Out, "  %-10s %-12s %-10s %-10s %-10s\n", "dataset", "measure", "avg bias", "max bias", "min bias")

	for _, name := range []string{"Net*", "PPI1*"} {
		d, err := gen.ByName(cfg.Scale, name)
		if err != nil {
			return nil, err
		}
		g := d.Build(cfg.Seed)
		sk := g.Skeleton()
		engine, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
		if err != nil {
			return nil, err
		}
		opt := engine.Options()
		r := rng.New(cfg.Seed + 7)
		pairs := randomPairs(g.NumVertices(), p.pairs, r)

		vals := map[string][]float64{}
		for _, pair := range pairs {
			u, v := pair[0], pair[1]
			s1, err := engine.Baseline(u, v)
			if err != nil {
				return nil, err
			}
			vals[MeasureSimRankI] = append(vals[MeasureSimRankI], s1)
			vals[MeasureSimRankII] = append(vals[MeasureSimRankII], detsim.SinglePair(sk, u, v, opt.C, opt.Steps))
			vals[MeasureSimRankIII] = append(vals[MeasureSimRankIII], dusim.SinglePair(g, u, v, opt.C, opt.Steps))
			vals[MeasureJaccardI] = append(vals[MeasureJaccardI], simmeasure.ExpectedJaccard(g, u, v))
			vals[MeasureJaccardII] = append(vals[MeasureJaccardII], simmeasure.Jaccard(sk, u, v))
		}
		for _, series := range vals {
			minMaxNormalize(series)
		}

		// Order all measures by decreasing SimRank-I (the Fig. 7 x-axis).
		order := make([]int, len(pairs))
		for i := range order {
			order[i] = i
		}
		ref := vals[MeasureSimRankI]
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && ref[order[j]] > ref[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		res.Series[name] = make(map[string][]float64)
		for m, series := range vals {
			sorted := make([]float64, len(series))
			for i, idx := range order {
				sorted[i] = series[idx]
			}
			res.Series[name][m] = sorted
		}

		for _, m := range []string{MeasureSimRankII, MeasureSimRankIII, MeasureJaccardI, MeasureJaccardII} {
			bias := make([]float64, len(pairs))
			for i := range pairs {
				bias[i] = vals[m][i] - vals[MeasureSimRankI][i]
				if bias[i] < 0 {
					bias[i] = -bias[i]
				}
			}
			st := summarize(bias)
			res.Rows = append(res.Rows, BiasStats{Dataset: name, Measure: m, Avg: st.Avg, Max: st.Max, Min: st.Min})
			fmt.Fprintf(cfg.Out, "  %-10s %-12s %-10.3f %-10.3f %-10.2g\n", name, m, st.Avg, st.Max, st.Min)
		}
	}
	return res, nil
}

package exp

import (
	"fmt"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/stats"
)

// ScalePoint is one x-position of Fig. 12: edge count against mean
// per-query time of SR-TS and SR-SP on an R-MAT uncertain graph.
type ScalePoint struct {
	Vertices int
	Edges    int
	TSTime   time.Duration
	SPTime   time.Duration
}

// Fig12Result holds the scalability sweep and the least-squares
// linearity check (the paper claims near-linear growth in |E|).
type Fig12Result struct {
	Points []ScalePoint
	// TSR2 and SPR2 are the R² of the time-vs-edges linear fits.
	TSR2, SPR2 float64
}

// Fig12Scalability reproduces Fig. 12: execution time of SR-TS and
// SR-SP on R-MAT uncertain graphs with a fixed vertex count and growing
// edge count (probabilities uniform in (0, 1], as in the paper). Both
// algorithms should scale roughly linearly with |E| because their cost
// is driven by graph density.
func Fig12Scalability(cfg Config) (*Fig12Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig12Result{}
	n := 1 << uint(p.rmatScale)
	fmt.Fprintf(cfg.Out, "Fig. 12 — scalability on R-MAT graphs with %d vertices (N=1000, n=5, l=1)\n", n)
	fmt.Fprintf(cfg.Out, "  %-10s %-12s %-12s\n", "|E|", "SR-TS", "SR-SP")

	r := rng.New(cfg.Seed + 19)
	for _, f := range p.rmatFactor {
		m := f * n
		skeleton := gen.RMAT(p.rmatScale, m, 0.45, 0.20, 0.20, r.Split())
		g := gen.WithUniformProbs(skeleton, 0.05, 1.0, r.Split())
		pairs := randomPairs(g.NumVertices(), params(cfg.Scale).pairs, r)

		ets, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: 1}))
		if err != nil {
			return nil, err
		}
		tsTime := stopwatch(len(pairs), func(i int) {
			if _, err := ets.TwoPhase(pairs[i][0], pairs[i][1]); err != nil {
				panic(err)
			}
		})

		esp, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: 1}))
		if err != nil {
			return nil, err
		}
		if _, err := esp.SRSP(pairs[0][0], pairs[0][1]); err != nil { // offline pools
			return nil, err
		}
		spTime := stopwatch(len(pairs), func(i int) {
			if _, err := esp.SRSP(pairs[i][0], pairs[i][1]); err != nil {
				panic(err)
			}
		})

		pt := ScalePoint{Vertices: n, Edges: m, TSTime: tsTime, SPTime: spTime}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(cfg.Out, "  %-10d %-12v %-12v\n", m, pt.TSTime, pt.SPTime)
	}

	// Linearity check: fit time against |E| and report R².
	var xs, ts, sp []float64
	for _, pt := range res.Points {
		xs = append(xs, float64(pt.Edges))
		ts = append(ts, float64(pt.TSTime.Microseconds()))
		sp = append(sp, float64(pt.SPTime.Microseconds()))
	}
	res.TSR2 = stats.FitLinear(xs, ts).R2
	res.SPR2 = stats.FitLinear(xs, sp).R2
	fmt.Fprintf(cfg.Out, "  linear fit R²: SR-TS %.3f, SR-SP %.3f\n", res.TSR2, res.SPR2)
	return res, nil
}

package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"usimrank/internal/gen"
)

// updateGolden rewrites the pinned outputs instead of comparing:
//
//	go test ./internal/exp -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/golden")

var durationType = reflect.TypeOf(time.Duration(0))

// scrub normalises a result value for golden comparison, in place where
// possible: every time.Duration is zeroed (wall times are the one
// nondeterministic ingredient of the runners), and every float64 is
// rounded to 9 significant digits so a last-ulp libm difference across
// architectures cannot flake the pin while any real regression still
// trips it.
func scrub(v reflect.Value) reflect.Value {
	if !v.IsValid() {
		return v
	}
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return v
		}
		scrub(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanSet() {
				continue
			}
			f.Set(scrub(f))
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			v.Index(i).Set(scrub(v.Index(i)))
		}
	case reflect.Map:
		for _, k := range v.MapKeys() {
			elem := reflect.New(v.Type().Elem()).Elem()
			elem.Set(v.MapIndex(k))
			v.SetMapIndex(k, scrub(elem))
		}
	case reflect.Int64:
		if v.Type() == durationType {
			return reflect.Zero(v.Type())
		}
	case reflect.Float64, reflect.Float32:
		f, _ := strconv.ParseFloat(strconv.FormatFloat(v.Float(), 'g', 9, 64), 64)
		r := reflect.New(v.Type()).Elem()
		r.SetFloat(f)
		return r
	}
	return v
}

// goldenRunners maps a golden-file stem to its runner. Each runs at the
// Tiny scale with seed 1 and single-threaded engines — the engines are
// deterministic for every Parallelism, this just keeps the pin cheap.
var goldenRunners = []struct {
	name string
	run  func(Config) (any, error)
	// normalize clears fields *derived from* wall times (the generic
	// scrub only reaches time.Duration values themselves).
	normalize func(any)
}{
	{name: "table1", run: func(c Config) (any, error) { return Table1WalkPr(c) }},
	{name: "table2", run: func(c Config) (any, error) { return Table2Datasets(c) }},
	{name: "fig7_table3", run: func(c Config) (any, error) { return Fig7Table3Bias(c) }},
	{name: "fig8", run: func(c Config) (any, error) { return Fig8Convergence(c) }},
	{name: "fig9", run: func(c Config) (any, error) { return Fig9Efficiency(c) }},
	{name: "fig10", run: func(c Config) (any, error) { return Fig10Accuracy(c) }},
	{name: "fig11", run: func(c Config) (any, error) { return Fig11NSweep(c) }},
	{name: "fig12", run: func(c Config) (any, error) { return Fig12Scalability(c) }, normalize: func(res any) {
		// The R² linearity scores are fits of measured per-query times;
		// TestFig12Scalability checks them, the golden file pins only
		// the deterministic sweep shape.
		r := res.(*Fig12Result)
		r.TSR2, r.SPR2 = 0, 0
	}},
	{name: "fig13", run: func(c Config) (any, error) { return Fig13Proteins(c) }},
	{name: "fig15", run: func(c Config) (any, error) { return Fig15ERTime(c) }},
	{name: "table5", run: func(c Config) (any, error) { return Table5ERQuality(c) }},
}

// TestGolden pins every figure/table runner's result struct (timings
// scrubbed, floats rounded) to a golden JSON file, so an experiment
// regression — a changed score, a reordered top-k list, a different
// dataset shape — fails tier-1 `go test ./...` instead of waiting for
// someone to re-run the evaluation by hand. Regenerate deliberately
// with -update-golden after an intended change, and review the diff
// like code.
func TestGolden(t *testing.T) {
	for _, gr := range goldenRunners {
		t.Run(gr.name, func(t *testing.T) {
			res, err := gr.run(Config{Scale: gen.Tiny, Seed: 1, Out: io.Discard, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if gr.normalize != nil {
				gr.normalize(res)
			}
			scrub(reflect.ValueOf(res))
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", gr.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s output diverged from golden file.\nIf the change is intended, regenerate with:\n  go test ./internal/exp -run TestGolden -update-golden\ngot:\n%s", gr.name, diffHint(want, got))
			}
		})
	}
}

// diffHint returns the first few lines around the first divergence —
// enough to see what moved without dumping two whole files.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			var buf bytes.Buffer
			for j := lo; j <= i && j < len(gl); j++ {
				buf.WriteString("  got:  ")
				buf.Write(gl[j])
				buf.WriteByte('\n')
			}
			buf.WriteString("  want: ")
			buf.Write(wl[i])
			buf.WriteByte('\n')
			buf.WriteString("  (line " + strconv.Itoa(i+1) + ")")
			return buf.String()
		}
	}
	return "files differ in length"
}

// Package exp contains one runner per table and figure of the paper's
// evaluation (Sec. VII). Every runner is deterministic given a seed,
// prints a human-readable table to the configured writer, and returns a
// machine-readable result struct; bench_test.go at the repository root
// wraps each runner in a benchmark, and cmd/usim-exp exposes them on the
// command line.
//
// Runners accept a gen.Scale: Tiny keeps CI fast, Small is a sensible
// local run, Paper approaches the published sizes. The mapping from the
// paper's datasets to the synthetic catalog — including where densities
// were reduced so the exponential exact Baseline terminates — is
// documented in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// tempDirFor creates a scratch directory for disk-backed runners. The
// directory lives under the default temp root and is best-effort cleaned
// by the OS; runners that care clean up themselves.
func tempDirFor(Config) string {
	dir, err := os.MkdirTemp("", "usimrank-exp-*")
	if err != nil {
		panic(err)
	}
	return dir
}

// Config configures a runner.
type Config struct {
	// Scale selects dataset sizes (gen.Tiny by default).
	Scale gen.Scale
	// Seed drives all randomness (default 1).
	Seed uint64
	// Out receives the printed tables (io.Discard when nil).
	Out io.Writer
	// Parallelism bounds the engine worker pools (0 selects the engine
	// default, runtime.GOMAXPROCS(0)). Results are identical for every
	// value; only wall time changes.
	Parallelism int
}

// engineOptions applies the config's parallelism to an engine option
// set, so every runner threads the knob the same way.
func (c Config) engineOptions(base core.Options) core.Options {
	base.Parallelism = c.Parallelism
	return base
}

func (c Config) norm() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// scaleParams holds per-scale workload knobs.
type scaleParams struct {
	pairs      int   // random vertex pairs for bias/efficiency/accuracy
	fig8Pairs  int   // pairs for the convergence study
	fig8MaxN   int   // maximum iteration count in Fig. 8
	nSweep     []int // sample counts for Fig. 11
	rmatScale  int   // log2 vertices for Fig. 12
	rmatFactor []int // edge multipliers for Fig. 12
	erSweep    []int // record counts for Fig. 15
	erRecords  int   // record count for Tables IV/V
	proteins   int   // proteins in the Fig. 13 case study
}

func params(s gen.Scale) scaleParams {
	switch s {
	case gen.Small:
		return scaleParams{
			pairs:      100,
			fig8Pairs:  20,
			fig8MaxN:   10,
			nSweep:     []int{100, 250, 500, 1000, 1500, 2000},
			rmatScale:  14,
			rmatFactor: []int{1, 2, 3, 4, 5},
			erSweep:    []int{400, 600, 800, 1000},
			erRecords:  400,
			proteins:   400,
		}
	case gen.Paper:
		return scaleParams{
			pairs:      1000,
			fig8Pairs:  100,
			fig8MaxN:   10,
			nSweep:     []int{100, 250, 500, 1000, 1500, 2000},
			rmatScale:  19,
			rmatFactor: []int{2, 4, 6, 8, 10},
			erSweep:    []int{2000, 3000, 4000, 5000},
			erRecords:  2000,
			proteins:   2708,
		}
	default: // Tiny
		return scaleParams{
			pairs:      12,
			fig8Pairs:  5,
			fig8MaxN:   6,
			nSweep:     []int{100, 200, 400},
			rmatScale:  10,
			rmatFactor: []int{1, 2, 3, 4, 5},
			erSweep:    []int{120, 180, 240},
			erRecords:  240,
			proteins:   120,
		}
	}
}

// randomPairs draws count distinct-ish uniform vertex pairs (u ≠ v).
func randomPairs(n, count int, r *rng.RNG) [][2]int {
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		pairs = append(pairs, [2]int{u, v})
	}
	return pairs
}

// relErr returns |s − ref| / ref, the paper's relative-error metric.
// Pairs with ref = 0 are excluded by callers.
func relErr(s, ref float64) float64 {
	d := s - ref
	if d < 0 {
		d = -d
	}
	return d / ref
}

// meanRelErr averages relErr over pairs, skipping zero references.
func meanRelErr(vals, refs []float64) float64 {
	sum, n := 0.0, 0
	for i := range vals {
		if refs[i] > 0 {
			sum += relErr(vals[i], refs[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// stopwatch measures the mean wall time of f over rounds calls.
func stopwatch(rounds int, f func(i int)) time.Duration {
	start := time.Now()
	for i := 0; i < rounds; i++ {
		f(i)
	}
	if rounds == 0 {
		return 0
	}
	return time.Since(start) / time.Duration(rounds)
}

// valueStats summarises a value list.
type valueStats struct {
	Avg, Max, Min float64
}

func summarize(vals []float64) valueStats {
	if len(vals) == 0 {
		return valueStats{}
	}
	s := valueStats{Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v > s.Max {
			s.Max = v
		}
		if v < s.Min {
			s.Min = v
		}
	}
	s.Avg = sum / float64(len(vals))
	return s
}

// minMaxNormalize rescales vals into [0, 1] in place (no-op when the
// values are constant), the normalisation Fig. 7 applies before
// comparing measures.
func minMaxNormalize(vals []float64) {
	if len(vals) == 0 {
		return
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return
	}
	for i := range vals {
		vals[i] = (vals[i] - lo) / (hi - lo)
	}
}

// sortedDesc returns a copy of vals sorted descending (the Fig. 7
// presentation order).
func sortedDesc(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// describe prints a one-line dataset summary (the Table II row).
func describe(w io.Writer, name string, g *ugraph.Graph) {
	fmt.Fprintf(w, "%-10s |V|=%-8d |E|=%-9d avg-deg=%.2f mean-p=%.2f\n",
		name, g.NumVertices(), g.NumArcs(), g.AverageOutDegree(), g.MeanProbability())
}

package exp

import (
	"fmt"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/speedup"
	"usimrank/internal/transpr"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// AblationResult is a generic named-measurement container for the
// ablation studies of DESIGN.md §5.
type AblationResult struct {
	Name   string
	Values map[string]float64
}

// AblationSharedFilters quantifies the bias the paper's shared
// filter-vector pool introduces versus independent pools, on a loopy
// graph where walk coupling matters. Values are mean absolute errors of
// m̂(k) against the exact meeting probabilities, averaged over k and a
// set of vertex pairs.
func AblationSharedFilters(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	g := ugraph.PaperFig1().Reverse() // loopy, small: exact values available
	const N, n = 20000, 4
	r := rng.New(cfg.Seed)

	shared := speedup.BuildFilters(g, N, r.Split())
	indepU := speedup.BuildFilters(g, N, r.Split())
	indepV := speedup.BuildFilters(g, N, r.Split())

	pairs := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 4}}
	var errShared, errIndep float64
	count := 0
	for _, pair := range pairs {
		u, v := pair[0], pair[1]
		ru, err := walkpr.TransitionRows(g, u, n, walkpr.Options{})
		if err != nil {
			return nil, err
		}
		rv, err := walkpr.TransitionRows(g, v, n, walkpr.Options{})
		if err != nil {
			return nil, err
		}
		ms := speedup.Estimate(shared, shared, u, v, n)
		mi := speedup.Estimate(indepU, indepV, u, v, n)
		for k := 1; k <= n; k++ {
			exact := ru[k].Dot(rv[k])
			errShared += abs(ms[k] - exact)
			errIndep += abs(mi[k] - exact)
			count++
		}
	}
	res := &AblationResult{
		Name: "shared-vs-independent-filters",
		Values: map[string]float64{
			"mae_shared":      errShared / float64(count),
			"mae_independent": errIndep / float64(count),
		},
	}
	fmt.Fprintf(cfg.Out, "Ablation (SR-SP filter pools): MAE shared=%.5f independent=%.5f\n",
		res.Values["mae_shared"], res.Values["mae_independent"])
	return res, nil
}

// AblationChoicePolicy quantifies the distributional difference between
// the Sampling algorithm's re-rolled uniform choice and the Speedup
// algorithm's fixed per-(vertex, process) choice, on a graph with a
// certain 2-cycle where revisits are guaranteed. It reports the mean
// absolute deviation of the step-k occupancy distribution from the exact
// rows, for both samplers.
func AblationChoicePolicy(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	// Dense loops: 0↔1, 0↔2, self-loop at 0, all certain, so both
	// samplers only differ by choice policy.
	b := ugraph.NewBuilder(3)
	b.AddArc(0, 0, 1)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 1)
	b.AddArc(0, 2, 1)
	b.AddArc(2, 0, 1)
	g := b.MustBuild()
	const N, n, src = 40000, 6, 0

	rows, err := walkpr.TransitionRows(g, src, n, walkpr.Options{})
	if err != nil {
		return nil, err
	}

	r := rng.New(cfg.Seed)
	// Speedup-style fixed-choice occupancy.
	f := speedup.BuildFilters(g, N, r.Split())
	tab := speedup.Propagate(f, src, n)
	// Sampling-style re-rolled occupancy.
	walks := sampleOccupancy(g, src, n, N, r.Split())

	var devFixed, devReroll float64
	count := 0
	for k := 1; k <= n; k++ {
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			exact := rows[k].At(v)
			fixed := 0.0
			if vec, ok := tab.Levels[k][v]; ok {
				fixed = float64(vec.PopCount()) / N
			}
			devFixed += abs(fixed - exact)
			devReroll += abs(walks[k][v] - exact)
			count++
		}
	}
	res := &AblationResult{
		Name: "choice-policy",
		Values: map[string]float64{
			"mad_fixed_choice": devFixed / float64(count),
			"mad_rerolled":     devReroll / float64(count),
		},
	}
	fmt.Fprintf(cfg.Out, "Ablation (choice policy): MAD fixed=%.5f re-rolled=%.5f\n",
		res.Values["mad_fixed_choice"], res.Values["mad_rerolled"])
	return res, nil
}

// sampleOccupancy estimates the step-k occupancy distribution with the
// Fig. 4 sampler.
func sampleOccupancy(g *ugraph.Graph, src, n, N int, r *rng.RNG) []map[int32]float64 {
	occ := make([]map[int32]float64, n+1)
	for k := range occ {
		occ[k] = make(map[int32]float64)
	}
	world := ugraph.NewLazyWorld(g, r)
	for i := 0; i < N; i++ {
		world.Reset()
		cur := int32(src)
		occ[0][cur] += 1.0 / float64(N)
		for k := 1; k <= n; k++ {
			nbrs := world.Out(cur)
			if len(nbrs) == 0 {
				break
			}
			cur = nbrs[r.Intn(len(nbrs))]
			occ[k][cur] += 1.0 / float64(N)
		}
	}
	return occ
}

// AblationStateMerge measures how much the state-merged exact method
// saves over raw walk enumeration (the disk TransPr tuple counts) on a
// diamond-lattice graph where many walks share visit records.
func AblationStateMerge(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	// A stack of diamonds: 2 parallel paths per layer; walks through k
	// layers number 2^k but states collapse per layer pattern.
	const layers = 5
	b := ugraph.NewBuilder(2*layers + 2)
	for l := 0; l < layers; l++ {
		base := 2 * l
		b.AddArc(base, base+1, 0.9)
		b.AddArc(base, base+2, 0.8)
		b.AddArc(base+1, base+2, 0.7) // converge onto the next layer root
	}
	g := b.MustBuild()
	const K = 2 * layers

	dir := tempDirFor(cfg)
	res1, err := transpr.Run(g, K, dir, transpr.Options{})
	if err != nil {
		return nil, err
	}
	var tuples int64
	for _, c := range res1.WalksPerLevel {
		tuples += c
	}

	start := time.Now()
	if _, err := walkpr.TransitionRows(g, 0, K, walkpr.Options{}); err != nil {
		return nil, err
	}
	merged := time.Since(start)

	res := &AblationResult{
		Name: "state-merging",
		Values: map[string]float64{
			"disk_tuples_total":  float64(tuples),
			"merged_rows_millis": float64(merged.Milliseconds()),
		},
	}
	fmt.Fprintf(cfg.Out, "Ablation (state merging): disk TransPr materialised %d tuples; merged in-memory rows took %v\n",
		tuples, merged)
	return res, nil
}

// AblationGirth measures the value of the Lemma 3 product fast path on a
// high-girth graph: matrix propagation (with girth check and W(1) paid
// once, as in TransPr) versus general walk-state tracking per source.
func AblationGirth(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	// Directed circulant with positive jumps 1, 5, 25: no directed cycle
	// shorter than n/25, so the product recurrence is exact for K = 6.
	const n, K = 2048, 6
	b := ugraph.NewBuilder(n)
	r := rng.New(cfg.Seed)
	for i := 0; i < n; i++ {
		for _, j := range []int{1, 5, 25} {
			b.AddArc(i, (i+j)%n, 0.2+0.8*r.Float64())
		}
	}
	g := b.MustBuild()

	prop, err := walkpr.NewProductPropagator(g, K)
	if err != nil {
		return nil, err
	}
	const sources = 50
	fast := stopwatch(sources, func(i int) {
		if _, err := prop.Rows(i); err != nil {
			panic(err)
		}
	})
	general := stopwatch(sources, func(i int) {
		if _, err := walkpr.TransitionRows(g, i, K, walkpr.Options{}); err != nil {
			panic(err)
		}
	})
	res := &AblationResult{
		Name: "girth-fast-path",
		Values: map[string]float64{
			"product_micros": float64(fast.Microseconds()),
			"general_micros": float64(general.Microseconds()),
		},
	}
	fmt.Fprintf(cfg.Out, "Ablation (Lemma 3 fast path): product %v vs general %v per source\n", fast, general)
	return res, nil
}

// AblationLSweep traces the Corollary 1 trade-off: relative error and
// per-query time of SR-TS as the split l grows from 0 to 4.
func AblationLSweep(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	d, err := gen.ByName(cfg.Scale, "Condmat*")
	if err != nil {
		return nil, err
	}
	g := d.Build(cfg.Seed)
	r := rng.New(cfg.Seed + 29)
	pairs := randomPairs(g.NumVertices(), params(cfg.Scale).pairs, r)

	exact, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
	if err != nil {
		return nil, err
	}
	refs := make([]float64, len(pairs))
	for i, pair := range pairs {
		if refs[i], err = exact.Baseline(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}

	res := &AblationResult{Name: "l-sweep", Values: map[string]float64{}}
	fmt.Fprintf(cfg.Out, "Ablation (two-phase split l): Corollary 1 trade-off on %s\n", d.Name)
	for l := 0; l <= 4; l++ {
		e, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: l, N: 200}))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(pairs))
		mean := stopwatch(len(pairs), func(i int) {
			v, err := e.TwoPhase(pairs[i][0], pairs[i][1])
			if err != nil {
				panic(err)
			}
			vals[i] = v
		})
		errL := meanRelErr(vals, refs)
		res.Values[fmt.Sprintf("relerr_l%d", l)] = errL
		res.Values[fmt.Sprintf("micros_l%d", l)] = float64(mean.Microseconds())
		fmt.Fprintf(cfg.Out, "  l=%d relerr=%.4f time=%v (bound factor %.4f)\n",
			l, errL, mean, core.TwoPhaseErrorBound(0.6, l, 5))
	}
	return res, nil
}

// AblationDiskTransPr contrasts the disk-backed TransPr (the paper's
// Fig. 3 with column-store I/O accounting) against the in-memory exact
// rows on the Fig. 1 example graph.
func AblationDiskTransPr(cfg Config) (*AblationResult, error) {
	cfg = cfg.norm()
	g := ugraph.PaperFig1()
	const K = 5
	dir := tempDirFor(cfg)

	start := time.Now()
	r, err := transpr.Run(g, K, dir, transpr.Options{})
	if err != nil {
		return nil, err
	}
	diskTime := time.Since(start)
	st := r.Store.Stats()

	start = time.Now()
	for src := 0; src < g.NumVertices(); src++ {
		if _, err := walkpr.TransitionRows(g, src, K, walkpr.Options{}); err != nil {
			return nil, err
		}
	}
	memTime := time.Since(start)

	res := &AblationResult{
		Name: "disk-vs-memory-transpr",
		Values: map[string]float64{
			"disk_millis":  float64(diskTime.Milliseconds()),
			"mem_millis":   float64(memTime.Milliseconds()),
			"block_reads":  float64(st.BlockReads),
			"block_writes": float64(st.BlockWrites),
		},
	}
	fmt.Fprintf(cfg.Out, "Ablation (TransPr backing): disk %v (%d block writes, %d reads) vs memory %v\n",
		diskTime, st.BlockWrites, st.BlockReads, memTime)
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

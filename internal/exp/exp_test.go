package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"usimrank/internal/gen"
)

func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Scale: gen.Tiny, Seed: 1, Out: buf}
}

func TestTable1WalkPr(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table1WalkPr(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// The three uncontested Table I values.
	if math.Abs(res.Alphas[1]-0.54) > 1e-9 || math.Abs(res.Alphas[2]-0.0375) > 1e-9 ||
		math.Abs(res.Alphas[3]-0.385) > 1e-9 {
		t.Fatalf("alphas wrong: %+v", res.Alphas)
	}
	// Eq. 11 agrees with the enumeration oracle.
	if math.Abs(res.WalkPr-res.EnumWalkPr) > 1e-9 {
		t.Fatalf("WalkPr %v vs oracle %v", res.WalkPr, res.EnumWalkPr)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("no output printed")
	}
}

func TestTable2Datasets(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2Datasets(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d datasets", len(rows))
	}
	for _, r := range rows {
		if r.Vertices == 0 || r.Arcs == 0 {
			t.Fatalf("degenerate dataset %+v", r)
		}
	}
}

func TestFig7Table3Bias(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig7Table3Bias(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 datasets × 4 measures
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Avg < 0 || r.Max < r.Avg || r.Min > r.Avg {
			t.Fatalf("inconsistent stats %+v", r)
		}
		if r.Max > 1.0001 {
			t.Fatalf("bias above 1 after normalisation: %+v", r)
		}
	}
	// Fig. 7 series: SimRank-I must be sorted descending.
	for ds, series := range res.Series {
		ref := series[MeasureSimRankI]
		for i := 1; i < len(ref); i++ {
			if ref[i] > ref[i-1]+1e-12 {
				t.Fatalf("%s: SimRank-I series not sorted", ds)
			}
		}
	}
}

func TestFig8Convergence(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig8Convergence(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("got %d curves", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Avg) < 3 {
			t.Fatalf("%s: curve too short (%d points)", c.Dataset, len(c.Avg))
		}
		// Convergence: the last two iterates are closer than the first two.
		n := len(c.Avg)
		d0 := math.Abs(c.Avg[1] - c.Avg[0])
		dn := math.Abs(c.Avg[n-1] - c.Avg[n-2])
		if dn > d0+1e-12 {
			t.Fatalf("%s: not converging (first diff %v, last diff %v)", c.Dataset, d0, dn)
		}
		for i, v := range c.Avg {
			if v < 0 || v > c.Max[i]+1e-12 || c.Max[i] > 1.0001 {
				t.Fatalf("%s: inconsistent avg/max at %d", c.Dataset, i)
			}
		}
	}
}

func TestFig9Efficiency(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig9Efficiency(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets × 8 algorithm variants.
	if len(res.Timings) != 32 {
		t.Fatalf("got %d timings", len(res.Timings))
	}
	for _, tm := range res.Timings {
		if !tm.DNF && tm.Mean <= 0 {
			t.Fatalf("non-positive timing %+v", tm)
		}
	}
}

func TestFig10Accuracy(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig10Accuracy(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 28 { // 4 datasets × 7 approximate variants
		t.Fatalf("got %d errors", len(res.Errors))
	}
	byAlgo := map[string][]float64{}
	for _, e := range res.Errors {
		if e.RelErr < 0 {
			t.Fatalf("negative error %+v", e)
		}
		byAlgo[e.Algo] = append(byAlgo[e.Algo], e.RelErr)
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	// The paper's headline accuracy claim: the two-phase algorithms beat
	// pure sampling on average.
	if mean(byAlgo["SR-TS(l=2)"]) >= mean(byAlgo["Sampling"]) {
		t.Fatalf("SR-TS(l=2) (%v) not more accurate than Sampling (%v)",
			mean(byAlgo["SR-TS(l=2)"]), mean(byAlgo["Sampling"]))
	}
}

func TestFig11NSweep(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig11NSweep(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Error at the largest N should not exceed error at the smallest N
	// (sampling noise shrinks with N).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.TSRelErr > first.TSRelErr*1.5+0.01 {
		t.Fatalf("TS error grew with N: %v → %v", first.TSRelErr, last.TSRelErr)
	}
}

func TestFig12Scalability(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig12Scalability(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Edges <= res.Points[i-1].Edges {
			t.Fatal("edge counts not increasing")
		}
	}
}

func TestFig13Proteins(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig13Proteins(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopUSIM) != 20 || len(res.TopDSIM) != 20 {
		t.Fatalf("top lists wrong: %d / %d", len(res.TopUSIM), len(res.TopDSIM))
	}
	if len(res.HubTop5) != 5 {
		t.Fatalf("hub top-5 has %d entries", len(res.HubTop5))
	}
	if len(res.HubTop5SRSP) != 5 {
		t.Fatalf("SR-SP hub top-5 has %d entries", len(res.HubTop5SRSP))
	}
	// The paper's claim: accounting for uncertainty finds at least as
	// many co-complex pairs as ignoring it.
	if res.CoComplexUSIM < res.CoComplexDSIM {
		t.Fatalf("USIM %d/20 below DSIM %d/20", res.CoComplexUSIM, res.CoComplexDSIM)
	}
	// And the USIM list should be dominated by true co-complex pairs.
	if res.CoComplexUSIM < 12 {
		t.Fatalf("USIM found only %d/20 co-complex pairs", res.CoComplexUSIM)
	}
}

func TestFig15ERTime(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig15ERTime(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for _, pt := range res.Points {
		for _, alg := range []string{"EIF", "DISTINCT", "SimER", "SimDER"} {
			if pt.Times[alg] <= 0 {
				t.Fatalf("missing timing for %s", alg)
			}
		}
	}
}

func TestTable5ERQuality(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table5ERQuality(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8*4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("bad PRF row %+v", r)
		}
	}
	// The paper's Table V shape: SimER has the best average F1.
	simer := res.Averages["SimER"][2]
	for _, other := range []string{"EIF", "DISTINCT"} {
		if simer < res.Averages[other][2]-0.05 {
			t.Fatalf("SimER F1 %.3f clearly below %s %.3f", simer, other, res.Averages[other][2])
		}
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)

	sf, err := AblationSharedFilters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Independent pools must be (at least) as accurate as the shared pool.
	if sf.Values["mae_independent"] > sf.Values["mae_shared"]+0.005 {
		t.Fatalf("independent pools worse than shared: %+v", sf.Values)
	}

	cp, err := AblationChoicePolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-rolled choices are the faithful sampler on a loopy graph.
	if cp.Values["mad_rerolled"] > cp.Values["mad_fixed_choice"]+0.005 {
		t.Fatalf("re-rolled worse than fixed: %+v", cp.Values)
	}
	// And the fixed-choice policy must show measurable bias here.
	if cp.Values["mad_fixed_choice"] < cp.Values["mad_rerolled"] {
		t.Logf("fixed-choice bias %.5f vs re-rolled %.5f",
			cp.Values["mad_fixed_choice"], cp.Values["mad_rerolled"])
	}

	sm, err := AblationStateMerge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Values["disk_tuples_total"] <= 0 {
		t.Fatalf("no tuples recorded: %+v", sm.Values)
	}

	gi, err := AblationGirth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The product fast path must win on a high-girth graph.
	if gi.Values["product_micros"] > gi.Values["general_micros"] {
		t.Fatalf("fast path slower than general: %+v", gi.Values)
	}

	ls, err := AblationLSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corollary 1: error at l=4 must not exceed error at l=0.
	if ls.Values["relerr_l4"] > ls.Values["relerr_l0"]+0.01 {
		t.Fatalf("l-sweep error not improving: %+v", ls.Values)
	}

	dt, err := AblationDiskTransPr(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Values["block_writes"] <= 0 {
		t.Fatalf("no I/O recorded: %+v", dt.Values)
	}
}

package exp

import (
	"fmt"

	"usimrank/internal/gen"
)

// Table2Row summarises one catalog dataset (the Table II row).
type Table2Row struct {
	Name     string
	Vertices int
	Arcs     int
	AvgDeg   float64
	MeanProb float64
}

// Table2Datasets builds every catalog dataset at the configured scale
// and reports its size, the analogue of the paper's Table II.
func Table2Datasets(cfg Config) ([]Table2Row, error) {
	cfg = cfg.norm()
	fmt.Fprintf(cfg.Out, "Table II — datasets at scale %q\n", cfg.Scale)
	var rows []Table2Row
	for _, d := range gen.Catalog(cfg.Scale) {
		g := d.Build(cfg.Seed)
		rows = append(rows, Table2Row{
			Name:     d.Name,
			Vertices: g.NumVertices(),
			Arcs:     g.NumArcs(),
			AvgDeg:   g.AverageOutDegree(),
			MeanProb: g.MeanProbability(),
		})
		describe(cfg.Out, d.Name, g)
	}
	return rows, nil
}

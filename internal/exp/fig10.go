package exp

import (
	"fmt"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

// AlgoError is one bar of Fig. 10: the mean relative error of an
// approximate algorithm against the exact Baseline.
type AlgoError struct {
	Dataset string
	Algo    string
	RelErr  float64
}

// Fig10Result holds the relative errors.
type Fig10Result struct {
	Errors []AlgoError
}

// Fig10Accuracy reproduces Fig. 10: relative error |s − s*| / s* of
// Sampling, SR-TS and SR-SP (l = 1, 2, 3) with the Baseline result s*
// as reference, averaged over sampled pairs (pairs with s* = 0 are
// skipped, as a relative error is undefined there).
func Fig10Accuracy(cfg Config) (*Fig10Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig10Result{}
	fmt.Fprintf(cfg.Out, "Fig. 10 — mean relative error vs Baseline (%d pairs)\n", p.pairs)

	for _, name := range fig9Datasets {
		d, err := gen.ByName(cfg.Scale, name)
		if err != nil {
			return nil, err
		}
		g := d.Build(cfg.Seed)
		r := rng.New(cfg.Seed + 13)
		pairs := randomPairs(g.NumVertices(), p.pairs, r)

		exactEngine, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
		if err != nil {
			return nil, err
		}
		refs := make([]float64, len(pairs))
		for i, pair := range pairs {
			s, err := exactEngine.Baseline(pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			refs[i] = s
		}

		record := func(algo string, vals []float64) {
			e := meanRelErr(vals, refs)
			res.Errors = append(res.Errors, AlgoError{Dataset: name, Algo: algo, RelErr: e})
			fmt.Fprintf(cfg.Out, "  %-10s %-12s %.4f\n", name, algo, e)
		}

		{
			e, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(pairs))
			for i, pair := range pairs {
				if vals[i], err = e.Sampling(pair[0], pair[1]); err != nil {
					return nil, err
				}
			}
			record("Sampling", vals)
		}
		for _, l := range []int{1, 2, 3} {
			ets, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: l}))
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(pairs))
			for i, pair := range pairs {
				if vals[i], err = ets.TwoPhase(pair[0], pair[1]); err != nil {
					return nil, err
				}
			}
			record(fmt.Sprintf("SR-TS(l=%d)", l), vals)

			esp, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: l}))
			if err != nil {
				return nil, err
			}
			for i, pair := range pairs {
				if vals[i], err = esp.SRSP(pair[0], pair[1]); err != nil {
					return nil, err
				}
			}
			record(fmt.Sprintf("SR-SP(l=%d)", l), vals)
		}
	}
	return res, nil
}

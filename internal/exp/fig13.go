package exp

import (
	"fmt"
	"sort"

	"usimrank/internal/core"
	"usimrank/internal/detsim"
	"usimrank/internal/gen"
	"usimrank/internal/matrix"
	"usimrank/internal/rng"
	"usimrank/internal/topk"
)

// ProteinPair is one ranked pair of the Fig. 13 case study.
type ProteinPair struct {
	U, V        int
	Similarity  float64
	SameComplex bool
}

// Fig13Result holds the protein case study: top-20 similar protein
// pairs under USIM (the paper's uncertain-graph SimRank) and DSIM
// (SimRank with uncertainty removed), scored against the planted
// complexes, plus the top-5 proteins most similar to a hub protein
// (the paper's BUB1 example, Fig. 14).
type Fig13Result struct {
	TopUSIM []ProteinPair
	TopDSIM []ProteinPair
	// CoComplexUSIM/DSIM count how many of the top-20 pairs share a
	// complex (the paper reports 16/20 vs 6/20).
	CoComplexUSIM int
	CoComplexDSIM int
	// Hub and its top-5 most USIM-similar proteins (Fig. 14), exact.
	Hub     int
	HubTop5 []ProteinPair
	// HubTop5SRSP is the same single-source query answered by the SR-SP
	// strategy — the paper's scalable serving path — through the
	// engine's single-source kernel.
	HubTop5SRSP []ProteinPair
}

// Fig13Proteins reproduces Figs. 13 and 14: detecting similar proteins
// in an uncertain PPI network. Ground truth is the planted complex
// structure (the substitute for the MIPS catalogue).
func Fig13Proteins(cfg Config) (*Fig13Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	ppiCfg := gen.DefaultPPIConfig(p.proteins)
	ppi := gen.PlantedPPI(ppiCfg, rng.New(cfg.Seed))
	g := ppi.Graph
	n := g.NumVertices()
	describe(cfg.Out, "PPI-case", g)

	// USIM: exact uncertain SimRank for all pairs; the per-source row
	// cache makes the all-pairs sweep O(n) row computations.
	engine, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, RowCacheSize: n + 1}))
	if err != nil {
		return nil, err
	}
	opt := engine.Options()

	// DSIM: deterministic SimRank on the skeleton, with per-source rows
	// computed once.
	sk := g.Skeleton()
	dsimRows := make([][]matrix.Vec, n)
	for v := 0; v < n; v++ {
		dsimRows[v] = detsim.MeetingRows(sk, v, opt.Steps)
	}
	dsim := func(u, v int) float64 {
		m := make([]float64, opt.Steps+1)
		for k := 0; k <= opt.Steps; k++ {
			m[k] = dsimRows[u][k].Dot(dsimRows[v][k])
		}
		return core.Combine(m, opt.C, opt.Steps)
	}

	// USIM top-20 via the top-k search module: the engine's
	// single-source kernels score each source's candidates in one pass,
	// fanned out on the worker pool.
	usimTop, err := topk.AllPairsParallel(engine, core.AlgBaseline, 20)
	if err != nil {
		return nil, err
	}
	var topUSIM []ProteinPair
	for _, r := range usimTop {
		topUSIM = append(topUSIM, ProteinPair{U: r.U, V: r.V, Similarity: r.Score, SameComplex: ppi.SameComplex(r.U, r.V)})
	}

	var dsimPairs []ProteinPair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dsimPairs = append(dsimPairs, ProteinPair{U: u, V: v, Similarity: dsim(u, v), SameComplex: ppi.SameComplex(u, v)})
		}
	}
	top := func(pairs []ProteinPair, k int) []ProteinPair {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Similarity > pairs[j].Similarity })
		if len(pairs) > k {
			pairs = pairs[:k]
		}
		return pairs
	}
	res := &Fig13Result{TopUSIM: topUSIM, TopDSIM: top(dsimPairs, 20)}
	for _, pr := range res.TopUSIM {
		if pr.SameComplex {
			res.CoComplexUSIM++
		}
	}
	for _, pr := range res.TopDSIM {
		if pr.SameComplex {
			res.CoComplexDSIM++
		}
	}

	// Fig. 14 analogue: the hub is the highest-degree complex member; its
	// top-5 uses the pruned single-source search.
	hub, best := -1, -1
	for v := 0; v < n; v++ {
		if ppi.ComplexOf[v] >= 0 && g.OutDegree(v) > best {
			hub, best = v, g.OutDegree(v)
		}
	}
	res.Hub = hub
	hubTop, err := topk.SingleSource(engine, core.AlgBaseline, hub, 5)
	if err != nil {
		return nil, err
	}
	for _, r := range hubTop {
		res.HubTop5 = append(res.HubTop5, ProteinPair{U: r.U, V: r.V, Similarity: r.Score, SameComplex: ppi.SameComplex(r.U, r.V)})
	}
	// The same query under SR-SP: approximate top-k over the
	// single-source kernel, the shape a serving deployment would run
	// when the exact Baseline cannot scale.
	hubTopSRSP, err := topk.SingleSource(engine, core.AlgSRSP, hub, 5)
	if err != nil {
		return nil, err
	}
	for _, r := range hubTopSRSP {
		res.HubTop5SRSP = append(res.HubTop5SRSP, ProteinPair{U: r.U, V: r.V, Similarity: r.Score, SameComplex: ppi.SameComplex(r.U, r.V)})
	}

	fmt.Fprintf(cfg.Out, "Fig. 13 — top-20 similar protein pairs, co-complex hits:\n")
	fmt.Fprintf(cfg.Out, "  USIM %d/20    DSIM %d/20\n", res.CoComplexUSIM, res.CoComplexDSIM)
	printHubTop := func(label string, prs []ProteinPair) {
		fmt.Fprintf(cfg.Out, "Fig. 14 — top-5 proteins similar to hub %d (%s):\n  ", hub, label)
		for _, pr := range prs {
			marker := ""
			if pr.SameComplex {
				marker = "*"
			}
			fmt.Fprintf(cfg.Out, "(%d%s %.4f) ", pr.V, marker, pr.Similarity)
		}
		fmt.Fprintln(cfg.Out)
	}
	printHubTop("exact", res.HubTop5)
	printHubTop("SR-SP", res.HubTop5SRSP)
	return res, nil
}

package exp

import (
	"fmt"
	"math"

	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// Table1Result reproduces the paper's Table I: the WalkPr worked example
// on the Fig. 1(a) graph.
type Table1Result struct {
	// Alphas[v] is α_W(v) for the four transition-source vertices of the
	// example walk, keyed by 0-based vertex.
	Alphas map[int32]float64
	// WalkPr is the walk probability from Eq. 9.
	WalkPr float64
	// EnumWalkPr is the possible-world enumeration oracle (Eq. 8).
	EnumWalkPr float64
	// PaperV1Alpha is the value Table I prints for α_W(v1) (0.64), which
	// disagrees with Eq. 11 and with the enumeration oracle; see
	// DESIGN.md.
	PaperV1Alpha float64
}

// Table1WalkPr runs the Table I worked example and verifies it against
// exhaustive enumeration.
func Table1WalkPr(cfg Config) (*Table1Result, error) {
	cfg = cfg.norm()
	g := ugraph.PaperFig1()
	walk := ugraph.PaperTableIWalk()

	res := &Table1Result{Alphas: make(map[int32]float64), PaperV1Alpha: 0.64}
	type usageSpec struct {
		v  int32
		ow []int32
		c  int
	}
	for _, u := range []usageSpec{
		{0, []int32{2}, 2},
		{1, []int32{2}, 1},
		{2, []int32{0, 3}, 3},
		{3, []int32{1}, 2},
	} {
		res.Alphas[u.v] = walkpr.Alpha(g, u.v, u.ow, u.c)
	}
	res.WalkPr = walkpr.WalkPr(g, walk)
	oracle, err := walkpr.EnumWalkPr(g, walk)
	if err != nil {
		return nil, err
	}
	res.EnumWalkPr = oracle

	fmt.Fprintf(cfg.Out, "Table I — WalkPr worked example on Fig. 1(a), walk v1,v3,v1,v3,v4,v2,v3,v4,v2\n")
	fmt.Fprintf(cfg.Out, "  %-6s %-12s %-12s\n", "vertex", "alpha (Eq.11)", "paper")
	paper := map[int32]string{0: "0.64 (typo)", 1: "0.54", 2: "0.0375", 3: "0.385"}
	for v := int32(0); v < 4; v++ {
		fmt.Fprintf(cfg.Out, "  v%-5d %-12.6g %-12s\n", v+1, res.Alphas[v], paper[v])
	}
	fmt.Fprintf(cfg.Out, "  walk probability: Eq.9 = %.8f, enumeration oracle = %.8f (diff %.2g)\n",
		res.WalkPr, res.EnumWalkPr, math.Abs(res.WalkPr-res.EnumWalkPr))
	return res, nil
}

package exp

import (
	"errors"
	"fmt"
	"time"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/walkpr"
)

// AlgoTiming is one bar of Fig. 9: the mean per-query execution time of
// one algorithm on one dataset.
type AlgoTiming struct {
	Dataset string
	Algo    string // "Baseline", "Sampling", "SR-TS(l=k)", "SR-SP(l=k)"
	Mean    time.Duration
	// DNF marks the Baseline exceeding its state budget (the analogue of
	// the paper's Baseline drowning in I/O on DBLP).
	DNF bool
}

// Fig9Result holds all timings.
type Fig9Result struct {
	Timings []AlgoTiming
}

// fig9Datasets are the four datasets of Figs. 9 and 10.
var fig9Datasets = []string{"PPI2*", "Condmat*", "PPI3*", "DBLP*"}

// Fig9Efficiency reproduces Fig. 9: per-query execution time of
// Baseline, Sampling, SR-TS and SR-SP (l = 1, 2, 3). Filter-vector pools
// are built offline, as in the paper, and excluded from query time.
func Fig9Efficiency(cfg Config) (*Fig9Result, error) {
	cfg = cfg.norm()
	p := params(cfg.Scale)
	res := &Fig9Result{}
	fmt.Fprintf(cfg.Out, "Fig. 9 — mean per-query execution time (%d pairs)\n", p.pairs)

	for _, name := range fig9Datasets {
		d, err := gen.ByName(cfg.Scale, name)
		if err != nil {
			return nil, err
		}
		g := d.Build(cfg.Seed)
		describe(cfg.Out, name, g)
		r := rng.New(cfg.Seed + 13)
		pairs := randomPairs(g.NumVertices(), p.pairs, r)

		record := func(algo string, mean time.Duration, dnf bool) {
			res.Timings = append(res.Timings, AlgoTiming{Dataset: name, Algo: algo, Mean: mean, DNF: dnf})
			if dnf {
				fmt.Fprintf(cfg.Out, "    %-12s DNF (state budget exceeded)\n", algo)
			} else {
				fmt.Fprintf(cfg.Out, "    %-12s %v\n", algo, mean)
			}
		}

		// Baseline: fresh engine per run so the row cache reflects the
		// per-query cost honestly (each query computes its own rows).
		{
			e, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, RowCacheSize: 1}))
			if err != nil {
				return nil, err
			}
			dnf := false
			mean := stopwatch(len(pairs), func(i int) {
				if dnf {
					return
				}
				if _, err := e.Baseline(pairs[i][0], pairs[i][1]); err != nil {
					if errors.Is(err, walkpr.ErrStateExplosion) {
						dnf = true
						return
					}
					panic(err)
				}
			})
			record("Baseline", mean, dnf)
		}
		// Sampling.
		{
			e, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed}))
			if err != nil {
				return nil, err
			}
			mean := stopwatch(len(pairs), func(i int) {
				if _, err := e.Sampling(pairs[i][0], pairs[i][1]); err != nil {
					panic(err)
				}
			})
			record("Sampling", mean, false)
		}
		// SR-TS and SR-SP for l = 1, 2, 3.
		for _, l := range []int{1, 2, 3} {
			e, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: l}))
			if err != nil {
				return nil, err
			}
			mean := stopwatch(len(pairs), func(i int) {
				if _, err := e.TwoPhase(pairs[i][0], pairs[i][1]); err != nil {
					panic(err)
				}
			})
			record(fmt.Sprintf("SR-TS(l=%d)", l), mean, false)

			esp, err := core.NewEngine(g, cfg.engineOptions(core.Options{Seed: cfg.Seed, L: l}))
			if err != nil {
				return nil, err
			}
			// Offline phase: warm the filter pools outside the timer.
			if _, err := esp.SRSP(pairs[0][0], pairs[0][1]); err != nil {
				return nil, err
			}
			mean = stopwatch(len(pairs), func(i int) {
				if _, err := esp.SRSP(pairs[i][0], pairs[i][1]); err != nil {
					panic(err)
				}
			})
			record(fmt.Sprintf("SR-SP(l=%d)", l), mean, false)
		}
	}
	return res, nil
}

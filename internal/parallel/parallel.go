// Package parallel provides the bounded fork-join pool and the
// deterministic work-splitting helpers behind the engine's concurrent
// sampling paths (the Monte Carlo Sampling algorithm and the SR-SP
// bit-vector propagations).
//
// Determinism contract: randomised work is divided into fixed-size
// chunks by SplitChunks, which assigns every chunk a seed drawn from the
// base stream in chunk order. The chunk→seed mapping therefore depends
// only on the base stream's state and the chunk size — never on the
// worker count or on scheduling — so per-chunk integer accumulators can
// be merged in any order and the result is bit-identical for every
// parallelism level, including 1. Non-random work (propagations, matrix
// rows) achieves the same guarantee by writing to disjoint per-index
// locations.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"usimrank/internal/rng"
)

// Workers normalises a parallelism knob: values < 1 select
// runtime.GOMAXPROCS(0), everything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded fork-join pool shared by every query of an engine.
// The bound is pool-wide, not per call: helper goroutines draw tokens
// from one semaphore of capacity Workers−1, and the goroutine calling
// For always works through jobs itself. One For call therefore runs on
// at most Workers goroutines, and Q concurrent For calls on at most
// Q + Workers − 1 — never Q × Workers. nil and the zero value run
// everything inline; an idle pool holds no goroutines.
type Pool struct {
	workers int
	sem     chan struct{}   // helper tokens, capacity workers-1
	ctx     context.Context // optional cancellation, set by WithContext
}

// NewPool returns a pool bounded at Workers(workers) goroutines.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{workers: w}
	if w > 1 {
		p.sem = make(chan struct{}, w-1)
	}
	return p
}

// Workers returns the pool's concurrency bound (1 for a nil or zero
// pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// WithContext returns a view of the pool whose For calls stop claiming
// new jobs once ctx is cancelled. The view shares the pool's helper
// tokens (the Parallelism bound stays pool-wide); only the cancellation
// signal is per-view, so one engine pool can serve many requests with
// independent deadlines. Jobs already running are not interrupted —
// cancellation is checked between jobs (for the engine's Monte Carlo
// paths, between sample chunks) — and after a cancelled For the
// per-index outputs are incomplete: callers must check ctx.Err() and
// discard them. A nil ctx returns the pool unchanged.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	if p == nil || ctx == nil {
		return p
	}
	view := *p
	view.ctx = ctx
	return &view
}

// cancelled reports whether the pool view's context is cancelled.
func (p *Pool) cancelled() bool {
	return p != nil && p.ctx != nil && p.ctx.Err() != nil
}

// Err returns the cancellation error of a WithContext view (nil for a
// live view or a plain pool). Callers whose For outputs are only valid
// when every job ran must check it after For: on a cancelled view,
// skipped jobs leave their slots unwritten.
func (p *Pool) Err() error {
	if p == nil || p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// For runs fn(i) for every i in [0, n) and returns when all n jobs have
// finished. The caller's goroutine participates, so For makes progress
// even when every helper token is held by concurrent For calls on the
// same pool. fn must confine its writes to per-i locations or otherwise
// order-independent accumulators; the iteration order is unspecified,
// so determinism must come from the work decomposition, never from
// scheduling. On a WithContext view, cancellation stops further jobs
// from starting; For still waits for jobs already in flight.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 || p == nil || p.sem == nil {
		for i := 0; i < n; i++ {
			if p.cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// Spawn up to w-1 helpers, but only while pool-wide tokens are free;
	// contended calls simply run more of the range on the caller.
	for g := 1; g < w; g++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				for !p.cancelled() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			}()
		default:
			g = w // no free token: stop spawning
		}
	}
	for !p.cancelled() {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// Chunk is one deterministic unit of sampled work: sample indexes
// [Lo, Hi) driven by the chunk's own RNG seed.
type Chunk struct {
	Lo, Hi int
	Seed   uint64
}

// Len returns the number of samples in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// DefaultChunkSize is the number of samples per chunk used by the
// engine's Monte Carlo paths: small enough that the paper's default
// N = 1000 splits into several chunks and keeps 8 workers busy, large
// enough that per-chunk setup (one lazy world, one RNG) is amortised.
const DefaultChunkSize = 128

// SplitChunks splits total samples into ⌈total/size⌉ chunks of at most
// size samples each and assigns every chunk a seed split off base in
// chunk order (advancing base once per chunk, exactly like rng.Split).
// The result depends only on base's state and size, so callers get the
// same chunk set — and hence bit-identical merged estimates — whatever
// worker count later processes it. size < 1 selects DefaultChunkSize.
func SplitChunks(total, size int, base *rng.RNG) []Chunk {
	return AppendChunks(nil, total, size, base)
}

// AppendChunks is SplitChunks appending to dst instead of allocating —
// the form the allocation-free sampling paths use with an arena-owned
// slice (pass dst[:0] to reuse its capacity). The appended chunk set is
// identical to SplitChunks(total, size, base).
func AppendChunks(dst []Chunk, total, size int, base *rng.RNG) []Chunk {
	if total <= 0 {
		return dst
	}
	if size < 1 {
		size = DefaultChunkSize
	}
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		dst = append(dst, Chunk{Lo: lo, Hi: hi, Seed: base.Uint64()})
	}
	return dst
}

// BufferPool is a bounded free list of reusable scratch buffers (walk
// arenas, per-worker sampling state). Unlike sync.Pool it is never
// drained by the garbage collector, so a warmed steady state really
// stays allocation-free — the property the v2 kernel's allocation
// regression gate pins — at the cost of holding up to max idle buffers
// alive. Get and Put are safe for concurrent use; the buffers
// themselves are handed out exclusively.
type BufferPool[T any] struct {
	mu     sync.Mutex
	free   []T
	max    int
	newFn  func() T
	gets   uint64
	misses uint64
}

// NewBufferPool returns a pool that builds fresh buffers with newFn and
// retains at most max idle ones (max < 1 selects 2×GOMAXPROCS, enough
// for every worker plus an outer scope per concurrent query shape).
func NewBufferPool[T any](max int, newFn func() T) *BufferPool[T] {
	if max < 1 {
		max = 2 * runtime.GOMAXPROCS(0)
	}
	return &BufferPool[T]{max: max, newFn: newFn}
}

// Get returns an idle buffer, or a newly built one when none is free.
func (p *BufferPool[T]) Get() T {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		var zero T
		p.free[n-1] = zero // drop the pool's reference
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return x
	}
	p.misses++
	p.mu.Unlock()
	return p.newFn()
}

// Stats returns the lifetime Get count and how many of those built a
// fresh buffer. A warmed pool shows misses plateau at its working-set
// size while gets keep climbing — the steady-state reuse signal the
// observability plane exposes as a hit rate.
func (p *BufferPool[T]) Stats() (gets, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.misses
}

// Put returns a buffer to the pool; beyond the bound it is dropped for
// the garbage collector.
func (p *BufferPool[T]) Put(x T) {
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, x)
	}
	p.mu.Unlock()
}

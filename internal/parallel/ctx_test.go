package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestForWithCancelledContext: a dead context stops For from claiming
// any job, on both the inline (1 worker) and the fan-out path.
func TestForWithCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := NewPool(workers).WithContext(ctx)
		var ran atomic.Int64
		p.For(100, func(i int) { ran.Add(1) })
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a cancelled context", workers, ran.Load())
		}
	}
}

// TestForCancelMidRun: cancelling while jobs execute stops the
// remaining range; For still returns (no deadlock, no leaked helpers).
func TestForCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(4).WithContext(ctx)
	var ran atomic.Int64
	const n = 10000
	p.For(n, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d jobs ran despite mid-run cancellation", got)
	}
}

// TestWithContextSharesTokens: the view shares the base pool's helper
// tokens, so layering a context does not widen the Parallelism bound.
func TestWithContextSharesTokens(t *testing.T) {
	base := NewPool(2)
	view := base.WithContext(context.Background())
	if view.Workers() != base.Workers() {
		t.Fatalf("view workers %d != base %d", view.Workers(), base.Workers())
	}
	if view.sem != base.sem {
		t.Fatal("WithContext view does not share the base pool's token channel")
	}
	// A nil context is a no-op view.
	if base.WithContext(nil) != base {
		t.Fatal("WithContext(nil) should return the receiver")
	}
}

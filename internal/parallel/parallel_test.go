package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"usimrank/internal/rng"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestPoolNilAndZeroRunInline(t *testing.T) {
	var nilPool *Pool
	var zero Pool
	for _, p := range []*Pool{nilPool, &zero} {
		if p.Workers() != 1 {
			t.Fatalf("Workers() = %d, want 1", p.Workers())
		}
		sum := 0
		p.For(10, func(i int) { sum += i }) // inline: unsynchronised write is safe
		if sum != 45 {
			t.Fatalf("sum = %d", sum)
		}
	}
}

func TestForCoversAllIndexesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(0, func(int) { called = true })
	p.For(-3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	p.For(100, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent jobs, bound %d", peak.Load(), workers)
	}
}

func TestSplitChunksCoverage(t *testing.T) {
	for _, tc := range []struct{ total, size, want int }{
		{1000, 128, 8},
		{128, 128, 1},
		{129, 128, 2},
		{7, 3, 3},
		{5, 0, 1}, // size < 1 → DefaultChunkSize
	} {
		chunks := SplitChunks(tc.total, tc.size, rng.New(1))
		if len(chunks) != tc.want {
			t.Fatalf("SplitChunks(%d,%d): %d chunks, want %d", tc.total, tc.size, len(chunks), tc.want)
		}
		covered := 0
		for i, c := range chunks {
			if c.Lo != covered || c.Hi <= c.Lo {
				t.Fatalf("chunk %d = %+v not contiguous", i, c)
			}
			covered = c.Hi
			if c.Len() != c.Hi-c.Lo {
				t.Fatalf("chunk %d Len mismatch", i)
			}
		}
		if covered != tc.total {
			t.Fatalf("chunks cover %d of %d", covered, tc.total)
		}
	}
	if got := SplitChunks(0, 16, rng.New(1)); got != nil {
		t.Fatalf("SplitChunks(0) = %v", got)
	}
}

func TestSplitChunksDeterministicSeeds(t *testing.T) {
	a := SplitChunks(1000, 128, rng.New(42))
	b := SplitChunks(1000, 128, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different base stream must give different seeds.
	c := SplitChunks(1000, 128, rng.New(43))
	same := 0
	for i := range a {
		if a[i].Seed == c[i].Seed {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct base seeds produced identical chunk seeds")
	}
	// Chunk seeds within one split must be pairwise distinct (with
	// overwhelming probability for a 64-bit stream).
	seen := map[uint64]bool{}
	for _, ch := range a {
		if seen[ch.Seed] {
			t.Fatalf("duplicate chunk seed %#x", ch.Seed)
		}
		seen[ch.Seed] = true
	}
}

// TestSplitChunksMatchesRNGSplit pins the seed-derivation discipline to
// rng.Split: chunk i's seed is the i-th Uint64 of the base stream, the
// exact value Split would use to construct the child generator.
func TestSplitChunksMatchesRNGSplit(t *testing.T) {
	ref := rng.New(7)
	chunks := SplitChunks(512, 128, rng.New(7))
	for i, ch := range chunks {
		child := ref.Split()
		want := rng.New(ch.Seed)
		for j := 0; j < 4; j++ {
			if a, b := child.Uint64(), want.Uint64(); a != b {
				t.Fatalf("chunk %d draw %d: split stream %#x vs chunk stream %#x", i, j, a, b)
			}
		}
	}
}

// TestPoolBoundIsPoolWide verifies the semaphore is shared across
// concurrent For calls: Q callers on one pool of W workers run at most
// Q + W - 1 jobs at once, never Q*W.
func TestPoolBoundIsPoolWide(t *testing.T) {
	const workers, callers = 2, 4
	p := NewPool(workers)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.For(200, func(int) {
				n := cur.Add(1)
				mu.Lock()
				if n > peak.Load() {
					peak.Store(n)
				}
				mu.Unlock()
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > callers+workers-1 {
		t.Fatalf("peak concurrency %d exceeds pool-wide bound %d", got, callers+workers-1)
	}
}

// TestAppendChunksMatchesSplitChunks: the appending variant must
// produce the identical chunk set and leave the base stream in the same
// state, whether appending to nil or reusing an arena slice.
func TestAppendChunksMatchesSplitChunks(t *testing.T) {
	for _, tc := range []struct{ total, size int }{{1000, 128}, {100, 128}, {0, 128}, {5, 0}, {256, 64}} {
		want := SplitChunks(tc.total, tc.size, rng.New(9))
		scratch := make([]Chunk, 3, 8) // stale contents must be overwritten
		got := AppendChunks(scratch[:0], tc.total, tc.size, rng.New(9))
		if len(got) != len(want) {
			t.Fatalf("total=%d size=%d: %d chunks, want %d", tc.total, tc.size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("total=%d size=%d chunk %d: %+v, want %+v", tc.total, tc.size, i, got[i], want[i])
			}
		}
	}
}

// TestBufferPoolReusesAndBounds: Get returns warmed buffers LIFO, Put
// beyond the bound drops, and newFn runs only on an empty free list.
func TestBufferPoolReusesAndBounds(t *testing.T) {
	built := 0
	p := NewBufferPool(2, func() *[]int {
		built++
		s := make([]int, 0, 8)
		return &s
	})
	a, b, c := p.Get(), p.Get(), p.Get()
	if built != 3 {
		t.Fatalf("built %d buffers, want 3", built)
	}
	p.Put(a)
	p.Put(b)
	p.Put(c) // beyond max=2: dropped
	if got := p.Get(); got != b {
		t.Fatal("Get did not return the most recently Put buffer")
	}
	if got := p.Get(); got != a {
		t.Fatal("Get did not drain the free list LIFO")
	}
	if p.Get() == c {
		t.Fatal("buffer beyond the bound was retained")
	}
	if built != 4 {
		t.Fatalf("built %d buffers, want 4 (c was dropped)", built)
	}
}

// TestBufferPoolDefaultBound: max < 1 selects a GOMAXPROCS-derived
// bound, never zero (which would make the pool useless).
func TestBufferPoolDefaultBound(t *testing.T) {
	p := NewBufferPool(0, func() int { return 0 })
	if p.max < 2 {
		t.Fatalf("defaulted bound %d too small", p.max)
	}
}

// TestBufferPoolConcurrent: Get/Put under contention (the race leg
// checks the locking).
func TestBufferPoolConcurrent(t *testing.T) {
	p := NewBufferPool(4, func() *int { return new(int) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := p.Get()
				*x++
				p.Put(x)
			}
		}()
	}
	wg.Wait()
}

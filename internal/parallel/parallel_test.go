package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"usimrank/internal/rng"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestPoolNilAndZeroRunInline(t *testing.T) {
	var nilPool *Pool
	var zero Pool
	for _, p := range []*Pool{nilPool, &zero} {
		if p.Workers() != 1 {
			t.Fatalf("Workers() = %d, want 1", p.Workers())
		}
		sum := 0
		p.For(10, func(i int) { sum += i }) // inline: unsynchronised write is safe
		if sum != 45 {
			t.Fatalf("sum = %d", sum)
		}
	}
}

func TestForCoversAllIndexesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(0, func(int) { called = true })
	p.For(-3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	p.For(100, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent jobs, bound %d", peak.Load(), workers)
	}
}

func TestSplitChunksCoverage(t *testing.T) {
	for _, tc := range []struct{ total, size, want int }{
		{1000, 128, 8},
		{128, 128, 1},
		{129, 128, 2},
		{7, 3, 3},
		{5, 0, 1}, // size < 1 → DefaultChunkSize
	} {
		chunks := SplitChunks(tc.total, tc.size, rng.New(1))
		if len(chunks) != tc.want {
			t.Fatalf("SplitChunks(%d,%d): %d chunks, want %d", tc.total, tc.size, len(chunks), tc.want)
		}
		covered := 0
		for i, c := range chunks {
			if c.Lo != covered || c.Hi <= c.Lo {
				t.Fatalf("chunk %d = %+v not contiguous", i, c)
			}
			covered = c.Hi
			if c.Len() != c.Hi-c.Lo {
				t.Fatalf("chunk %d Len mismatch", i)
			}
		}
		if covered != tc.total {
			t.Fatalf("chunks cover %d of %d", covered, tc.total)
		}
	}
	if got := SplitChunks(0, 16, rng.New(1)); got != nil {
		t.Fatalf("SplitChunks(0) = %v", got)
	}
}

func TestSplitChunksDeterministicSeeds(t *testing.T) {
	a := SplitChunks(1000, 128, rng.New(42))
	b := SplitChunks(1000, 128, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different base stream must give different seeds.
	c := SplitChunks(1000, 128, rng.New(43))
	same := 0
	for i := range a {
		if a[i].Seed == c[i].Seed {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct base seeds produced identical chunk seeds")
	}
	// Chunk seeds within one split must be pairwise distinct (with
	// overwhelming probability for a 64-bit stream).
	seen := map[uint64]bool{}
	for _, ch := range a {
		if seen[ch.Seed] {
			t.Fatalf("duplicate chunk seed %#x", ch.Seed)
		}
		seen[ch.Seed] = true
	}
}

// TestSplitChunksMatchesRNGSplit pins the seed-derivation discipline to
// rng.Split: chunk i's seed is the i-th Uint64 of the base stream, the
// exact value Split would use to construct the child generator.
func TestSplitChunksMatchesRNGSplit(t *testing.T) {
	ref := rng.New(7)
	chunks := SplitChunks(512, 128, rng.New(7))
	for i, ch := range chunks {
		child := ref.Split()
		want := rng.New(ch.Seed)
		for j := 0; j < 4; j++ {
			if a, b := child.Uint64(), want.Uint64(); a != b {
				t.Fatalf("chunk %d draw %d: split stream %#x vs chunk stream %#x", i, j, a, b)
			}
		}
	}
}

// TestPoolBoundIsPoolWide verifies the semaphore is shared across
// concurrent For calls: Q callers on one pool of W workers run at most
// Q + W - 1 jobs at once, never Q*W.
func TestPoolBoundIsPoolWide(t *testing.T) {
	const workers, callers = 2, 4
	p := NewPool(workers)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.For(200, func(int) {
				n := cur.Add(1)
				mu.Lock()
				if n > peak.Load() {
					peak.Store(n)
				}
				mu.Unlock()
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > callers+workers-1 {
		t.Fatalf("peak concurrency %d exceeds pool-wide bound %d", got, callers+workers-1)
	}
}

package mc

// Instantiated returns the number of arc-instantiation entries the most
// recent Sample call recorded in the arena — how many arcs of the
// possible worlds walked that chunk were materialised. The count resets
// at every Sample call (the out-sets are per-chunk state), so callers
// aggregating across chunks must read it after each call.
func (a *Arena) Instantiated() int { return len(a.inst) }

// FootprintBytes returns the arena's current buffer footprint — the
// high-water scratch memory this worker holds between queries. Element
// sizes are spelled per slice so the accessor tracks the Arena layout.
func (a *Arena) FootprintBytes() uint64 {
	int32Elems := cap(a.cur) + cap(a.wi) + cap(a.inst) +
		cap(a.logV) + cap(a.logStart) + cap(a.logLen) + cap(a.logCnt)
	return uint64(4*int32Elems + 8*cap(a.draws))
}

// Package mc implements the paper's Sampling algorithm (Fig. 4): Monte
// Carlo estimation of the meeting probabilities m(k)(u,v) from N pairs of
// random walks, each walk running in its own lazily instantiated possible
// world.
//
// The sampling discipline matters for correctness under the possible-world
// model: the first time a walk visits a vertex, every arc leaving it is
// flipped once and the outcome is remembered for the lifetime of that
// walk; later visits reuse the instantiation and only re-roll the uniform
// choice among the instantiated arcs. A walk that reaches a vertex with no
// instantiated out-arcs is dead: it stays nowhere and can never meet.
package mc

import (
	"fmt"
	"math"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Walks holds N sampled walks of length up to Steps starting at Src.
// Walk i occupies positions Pos[i][0..Alive[i]]; Alive[i] is the index of
// the last step at which the walk was still on a vertex (Steps if it
// never died).
type Walks struct {
	Src   int32
	Steps int
	N     int
	Pos   [][]int32
}

// Sample draws N walks of length n from src per Fig. 4. Each walk gets an
// independent lazy world. The caller owns r.
func Sample(g *ugraph.Graph, src int, n, N int, r *rng.RNG) *Walks {
	if src < 0 || src >= g.NumVertices() {
		panic(fmt.Sprintf("mc: source %d out of range [0,%d)", src, g.NumVertices()))
	}
	if n < 0 || N <= 0 {
		panic(fmt.Sprintf("mc: bad parameters n=%d N=%d", n, N))
	}
	w := &Walks{Src: int32(src), Steps: n, N: N, Pos: make([][]int32, N)}
	world := ugraph.NewLazyWorld(g, r)
	for i := 0; i < N; i++ {
		world.Reset()
		walk := make([]int32, 1, n+1)
		walk[0] = int32(src)
		for step := 0; step < n; step++ {
			cur := walk[len(walk)-1]
			nbrs := world.Out(cur)
			if len(nbrs) == 0 {
				break // dead end: the sampled world has no arc out of cur
			}
			walk = append(walk, nbrs[r.Intn(len(nbrs))])
		}
		w.Pos[i] = walk
	}
	return w
}

// At returns the vertex of walk i at step k, or -1 if the walk died
// before step k.
func (w *Walks) At(i, k int) int32 {
	if k >= len(w.Pos[i]) {
		return -1
	}
	return w.Pos[i][k]
}

// MeetingCounts returns, for k = 0..n, the number of walk pairs
// (Wᵘᵢ, Wᵛᵢ) that are on the same vertex at step k. The integer counts
// are the mergeable form of Eq. 13: chunked samplers sum the per-chunk
// counts (addition is order-independent, so the merged total is
// bit-identical for any chunk scheduling) and divide by the overall N
// once at the end. The two Walks must have equal Steps and N.
func MeetingCounts(wu, wv *Walks) []int {
	if wu.Steps != wv.Steps || wu.N != wv.N {
		panic("mc: mismatched walk sets")
	}
	n, N := wu.Steps, wu.N
	counts := make([]int, n+1)
	for i := 0; i < N; i++ {
		limit := len(wu.Pos[i])
		if l := len(wv.Pos[i]); l < limit {
			limit = l
		}
		for k := 0; k < limit; k++ {
			if wu.Pos[i][k] == wv.Pos[i][k] {
				counts[k]++
			}
		}
	}
	return counts
}

// MeetingEstimates returns the estimates m̂(k)(u,v) for k = 0..n per
// Eq. 13: the fraction of walk pairs (Wᵘᵢ, Wᵛᵢ) that are on the same
// vertex at step k. The two Walks must have equal Steps and N.
func MeetingEstimates(wu, wv *Walks) []float64 {
	counts := MeetingCounts(wu, wv)
	m := make([]float64, len(counts))
	for k, c := range counts {
		m[k] = float64(c) / float64(wu.N)
	}
	return m
}

// RequiredSamples returns the sample size N ≥ (3/ε²)·ln(2/δ) of Lemma 4
// that guarantees |m(k) − m̂(k)| ≤ ε with probability ≥ 1 − δ.
func RequiredSamples(eps, delta float64) int {
	if !(eps > 0) || !(delta > 0 && delta < 1) {
		panic(fmt.Sprintf("mc: bad accuracy parameters eps=%v delta=%v", eps, delta))
	}
	n := 3.0 / (eps * eps) * math.Log(2/delta)
	return int(n) + 1
}

package mc

// AccumulateWeighted reduces two position grids of one chunk into the
// first two moments of the per-walk-pair score
//
//	X_i = Σ_k coef[k] · 1[walk pair i meets at step k],
//
// the random variable whose mean the adaptive (ε, δ) estimator tracks:
// with coef[k] = (1−c)·c^k for k < steps and c^steps at k = steps this
// is exactly one walk pair's contribution to the Eq. 12 combination, so
// mean(X) over a chunk set equals Combine() of the same chunks' meeting
// frequencies. Zero coefficients (an exact prefix handled separately)
// skip their grid rows entirely. scratch must hold at least W float64s;
// it is overwritten. Dead walks (-1) never meet, as in CountMeets.
//
// Returns Σ X_i and Σ X_i² over the chunk's W pairs — mergeable across
// chunks in a fixed order for the same bit-stability argument as the
// integer meeting counts (per-chunk reduction order is independent of
// scheduling; the cross-chunk merge order is pinned by the caller).
func AccumulateWeighted(posU, posV []int32, steps, W int, coef []float64, scratch []float64) (sum, sumsq float64) {
	x := scratch[:W]
	for i := range x {
		x[i] = 0
	}
	for k := 0; k <= steps; k++ {
		c := coef[k]
		if c == 0 {
			continue
		}
		ru := posU[k*W : (k+1)*W]
		rv := posV[k*W : (k+1)*W : (k+1)*W]
		for i, u := range ru {
			if u >= 0 && u == rv[i] {
				x[i] += c
			}
		}
	}
	for _, xi := range x {
		sum += xi
		sumsq += xi * xi
	}
	return sum, sumsq
}

package mc

import (
	"math"
	"testing"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

func TestSampleWalkShapes(t *testing.T) {
	g := ugraph.PaperFig1()
	w := Sample(g, 0, 5, 100, rng.New(1))
	if w.N != 100 || w.Steps != 5 || w.Src != 0 {
		t.Fatalf("metadata wrong: %+v", w)
	}
	for i := 0; i < w.N; i++ {
		if len(w.Pos[i]) < 1 || len(w.Pos[i]) > 6 {
			t.Fatalf("walk %d has %d positions", i, len(w.Pos[i]))
		}
		if w.Pos[i][0] != 0 {
			t.Fatalf("walk %d starts at %d", i, w.Pos[i][0])
		}
		for j := 0; j+1 < len(w.Pos[i]); j++ {
			if !g.HasArc(int(w.Pos[i][j]), int(w.Pos[i][j+1])) {
				t.Fatalf("walk %d uses non-arc (%d,%d)", i, w.Pos[i][j], w.Pos[i][j+1])
			}
		}
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	g := ugraph.PaperFig1()
	a := Sample(g, 1, 4, 50, rng.New(9))
	b := Sample(g, 1, 4, 50, rng.New(9))
	for i := range a.Pos {
		if len(a.Pos[i]) != len(b.Pos[i]) {
			t.Fatal("same seed produced different walks")
		}
		for j := range a.Pos[i] {
			if a.Pos[i][j] != b.Pos[i][j] {
				t.Fatal("same seed produced different walks")
			}
		}
	}
}

func TestSampleDeadEnds(t *testing.T) {
	// 0 → 1 with p = 0.5; 1 is a sink. All walks die by step 1 or 2.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	g := b.MustBuild()
	w := Sample(g, 0, 5, 2000, rng.New(3))
	reached := 0
	for i := 0; i < w.N; i++ {
		switch len(w.Pos[i]) {
		case 1: // died immediately: arc missing in the sampled world
		case 2:
			reached++
			if w.Pos[i][1] != 1 {
				t.Fatalf("walk %d went to %d", i, w.Pos[i][1])
			}
		default:
			t.Fatalf("walk %d has %d positions", i, len(w.Pos[i]))
		}
		if w.At(i, 5) != -1 {
			t.Fatal("At past death should be -1")
		}
	}
	got := float64(reached) / float64(w.N)
	if math.Abs(got-0.5) > 0.03 {
		t.Fatalf("arc traversal frequency %v, want 0.5", got)
	}
}

func TestSamplePanicsOnBadArgs(t *testing.T) {
	g := ugraph.PaperFig1()
	for _, f := range []func(){
		func() { Sample(g, -1, 3, 10, rng.New(1)) },
		func() { Sample(g, 9, 3, 10, rng.New(1)) },
		func() { Sample(g, 0, -1, 10, rng.New(1)) },
		func() { Sample(g, 0, 3, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad arguments accepted")
				}
			}()
			f()
		}()
	}
}

// TestWalkStepDistribution verifies the sampler against the exact k-step
// transition rows: the empirical distribution of walk positions at step k
// must converge to Pr(u →k ·).
func TestWalkStepDistribution(t *testing.T) {
	g := ugraph.PaperFig1()
	const N, n, src = 60000, 3, 0
	w := Sample(g, src, n, N, rng.New(17))
	rows, err := walkpr.TransitionRows(g, src, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		counts := make(map[int32]int)
		for i := 0; i < N; i++ {
			if v := w.At(i, k); v >= 0 {
				counts[v]++
			}
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			got := float64(counts[v]) / N
			want := rows[k].At(v)
			if math.Abs(got-want) > 0.01 {
				t.Fatalf("step %d vertex %d: empirical %v, exact %v", k, v, got, want)
			}
		}
	}
}

// TestMeetingEstimatesUnbiased verifies m̂(k) against the exact
// m(k)(u,v) = ⟨row_u(k), row_v(k)⟩ on the Fig. 1 graph.
func TestMeetingEstimatesUnbiased(t *testing.T) {
	g := ugraph.PaperFig1()
	const N, n = 60000, 3
	u, v := 0, 1
	r := rng.New(23)
	wu := Sample(g, u, n, N, r)
	wv := Sample(g, v, n, N, r)
	got := MeetingEstimates(wu, wv)

	rowsU, err := walkpr.TransitionRows(g, u, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowsV, err := walkpr.TransitionRows(g, v, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= n; k++ {
		want := rowsU[k].Dot(rowsV[k])
		if math.Abs(got[k]-want) > 0.01 {
			t.Fatalf("m̂(%d) = %v, exact %v", k, got[k], want)
		}
	}
}

func TestMeetingEstimatesSameVertex(t *testing.T) {
	// m̂(0)(u,u) must be exactly 1: both walks start at u.
	g := ugraph.PaperFig1()
	r := rng.New(5)
	wu := Sample(g, 2, 3, 500, r)
	wv := Sample(g, 2, 3, 500, r)
	m := MeetingEstimates(wu, wv)
	if m[0] != 1 {
		t.Fatalf("m̂(0)(u,u) = %v", m[0])
	}
}

func TestMeetingEstimatesDistinctStart(t *testing.T) {
	g := ugraph.PaperFig1()
	r := rng.New(5)
	wu := Sample(g, 0, 3, 500, r)
	wv := Sample(g, 1, 3, 500, r)
	m := MeetingEstimates(wu, wv)
	if m[0] != 0 {
		t.Fatalf("m̂(0)(u,v) = %v for u≠v", m[0])
	}
}

func TestMeetingEstimatesMismatchedPanics(t *testing.T) {
	g := ugraph.PaperFig1()
	wu := Sample(g, 0, 3, 10, rng.New(1))
	wv := Sample(g, 1, 4, 10, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched walk sets accepted")
		}
	}()
	MeetingEstimates(wu, wv)
}

func TestRequiredSamples(t *testing.T) {
	// Lemma 4 with ε = 0.1, δ = 0.05: N ≥ 300·ln(40) ≈ 1106.6.
	n := RequiredSamples(0.1, 0.05)
	if n < 1106 || n > 1108 {
		t.Fatalf("RequiredSamples = %d", n)
	}
	// Tighter ε needs more samples.
	if RequiredSamples(0.01, 0.05) <= n {
		t.Fatal("sample size not monotone in ε")
	}
}

func TestRequiredSamplesPanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 0.1}, {-1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RequiredSamples(%v, %v) accepted", args[0], args[1])
				}
			}()
			RequiredSamples(args[0], args[1])
		}()
	}
}

// TestLazyWorldRevisitConsistency checks the possible-world discipline:
// on a graph where vertex 0 has one p=0.5 out-arc forming a self-loop,
// a walk that survives step 1 must survive every later step, because the
// world instantiation is fixed per walk.
func TestLazyWorldRevisitConsistency(t *testing.T) {
	b := ugraph.NewBuilder(1)
	b.AddArc(0, 0, 0.5)
	g := b.MustBuild()
	w := Sample(g, 0, 10, 5000, rng.New(31))
	for i := 0; i < w.N; i++ {
		l := len(w.Pos[i])
		if l != 1 && l != 11 {
			t.Fatalf("walk %d has %d positions; the self-loop must exist for all steps or none", i, l)
		}
	}
	// About half the walks should survive.
	alive := 0
	for i := 0; i < w.N; i++ {
		if len(w.Pos[i]) == 11 {
			alive++
		}
	}
	frac := float64(alive) / float64(w.N)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("survival fraction %v, want 0.5", frac)
	}
}

func BenchmarkSampleFig1(b *testing.B) {
	g := ugraph.PaperFig1()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(g, 0, 5, 100, r)
	}
}

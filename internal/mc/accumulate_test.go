package mc

import (
	"math"
	"testing"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// referenceWeighted recomputes the two moments walk-by-walk straight
// from the grids, with none of the row-major/skip-zero structure of the
// production reduction.
func referenceWeighted(posU, posV []int32, steps, W int, coef []float64) (sum, sumsq float64) {
	for i := 0; i < W; i++ {
		x := 0.0
		for k := 0; k <= steps; k++ {
			u := posU[k*W+i]
			if u >= 0 && u == posV[k*W+i] {
				x += coef[k]
			}
		}
		sum += x
		sumsq += x * x
	}
	return sum, sumsq
}

func TestAccumulateWeighted(t *testing.T) {
	g := testChainGraph(t) // shared helper graph from the v2 tests
	plan := BuildPlan(g)
	const (
		steps = 5
		W     = 256
	)
	c := 0.6
	coef := make([]float64, steps+1)
	for k := 0; k < steps; k++ {
		coef[k] = (1 - c) * math.Pow(c, float64(k))
	}
	coef[steps] = math.Pow(c, steps)

	var a Arena
	posU := make([]int32, (steps+1)*W)
	posV := make([]int32, (steps+1)*W)
	scratch := make([]float64, W)
	ru := rng.New(42)
	rv := rng.New(1042)
	for trial := 0; trial < 4; trial++ {
		plan.Sample(trial%g.NumVertices(), steps, W, ru, &a, posU)
		plan.Sample((trial+1)%g.NumVertices(), steps, W, rv, &a, posV)
		gotS, gotQ := AccumulateWeighted(posU, posV, steps, W, coef, scratch)
		wantS, wantQ := referenceWeighted(posU, posV, steps, W, coef)
		if math.Abs(gotS-wantS) > 1e-12 || math.Abs(gotQ-wantQ) > 1e-12 {
			t.Fatalf("trial %d: got (%v, %v), want (%v, %v)", trial, gotS, gotQ, wantS, wantQ)
		}
		// Consistency with CountMeets: Σ X = Σ_k coef[k]·meets[k].
		counts := make([]int64, steps+1)
		CountMeets(posU, posV, steps, W, counts)
		viaCounts := 0.0
		for k, n := range counts {
			viaCounts += coef[k] * float64(n)
		}
		if math.Abs(gotS-viaCounts) > 1e-12 {
			t.Fatalf("trial %d: sum %v disagrees with CountMeets route %v", trial, gotS, viaCounts)
		}
	}

	// Zero coefficients (exact prefix) must skip those steps entirely.
	zeroed := append([]float64(nil), coef...)
	zeroed[0], zeroed[1] = 0, 0
	gotS, gotQ := AccumulateWeighted(posU, posV, steps, W, zeroed, scratch)
	wantS, wantQ := referenceWeighted(posU, posV, steps, W, zeroed)
	if math.Abs(gotS-wantS) > 1e-12 || math.Abs(gotQ-wantQ) > 1e-12 {
		t.Fatalf("zero-prefix: got (%v, %v), want (%v, %v)", gotS, gotQ, wantS, wantQ)
	}

	// Identical grids meet everywhere they are alive: X_i ≤ Σ coef = 1.
	sumAll, _ := AccumulateWeighted(posU, posU, steps, W, coef, scratch)
	if sumAll > float64(W)+1e-9 {
		t.Fatalf("self-meet mass %v exceeds walk count %d", sumAll, W)
	}
}

// testChainGraph builds a small graph with both certain and uncertain
// rows so sampled walks die, branch, and meet.
func testChainGraph(t *testing.T) *ugraph.Graph {
	t.Helper()
	b := ugraph.NewBuilder(6)
	arcs := []struct {
		u, v int
		p    float64
	}{
		{0, 1, 1}, {1, 2, 0.8}, {2, 3, 1}, {3, 4, 0.5},
		{4, 5, 1}, {5, 0, 0.9}, {1, 3, 0.4}, {2, 5, 1},
	}
	for _, a := range arcs {
		b.AddArc(a.u, a.v, a.p)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

package mc

import (
	"math"
	"testing"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// v2Sample is the test harness around Plan.Sample: fresh plan, fresh
// arena, returns the position grid.
func v2Sample(g *ugraph.Graph, src, steps, W int, seed uint64) []int32 {
	p := BuildPlan(g)
	var a Arena
	pos := make([]int32, (steps+1)*W)
	r := rng.New(seed)
	p.Sample(src, steps, W, r, &a, pos)
	return pos
}

func TestV2PlanPartitionsRows(t *testing.T) {
	b := ugraph.NewBuilder(4)
	b.AddArc(0, 1, 1.0)
	b.AddArc(0, 2, 0.5)
	b.AddArc(0, 3, 1.0)
	b.AddArc(1, 2, 0.25)
	b.AddArc(2, 3, 1.0)
	g := b.MustBuild()
	p := BuildPlan(g)
	if p.NumVertices() != 4 {
		t.Fatalf("plan has %d vertices", p.NumVertices())
	}
	// Row 0: two certain arcs first, then the uncertain one.
	lo, hi := p.off[0], p.off[1]
	if p.certEnd[0]-lo != 2 || hi-p.certEnd[0] != 1 {
		t.Fatalf("row 0 split: certain %d, uncertain %d", p.certEnd[0]-lo, hi-p.certEnd[0])
	}
	if p.dst[p.certEnd[0]] != 2 {
		t.Fatalf("row 0 uncertain target %d, want 2", p.dst[p.certEnd[0]])
	}
	if got, want := p.thr[p.certEnd[0]], uint64(1)<<52; got != want {
		t.Fatalf("p=0.5 threshold %d, want %d", got, want)
	}
	// Row 2 is fully certain.
	if p.certEnd[2]-p.off[2] != 1 || p.off[3]-p.certEnd[2] != 0 {
		t.Fatal("row 2 not fully certain in plan")
	}
	if p.maxUnc != 1 {
		t.Fatalf("maxUnc = %d, want 1", p.maxUnc)
	}
}

// TestV2ThresholdMatchesBool pins the integer flip test against the v1
// float compare: for any draw, draw>>11 < ⌈p·2^53⌉ must equal
// float64(draw>>11)/2^53 < p.
func TestV2ThresholdMatchesBool(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 200000; trial++ {
		p := r.Float64()
		draw := r.Uint64()
		thr := uint64(math.Ceil(p * (1 << 53)))
		intFlip := draw>>11 < thr
		floatFlip := float64(draw>>11)/(1<<53) < p
		if intFlip != floatFlip {
			t.Fatalf("p=%v draw=%d: threshold %v, float compare %v", p, draw, intFlip, floatFlip)
		}
	}
}

func TestV2SampleWalkShapes(t *testing.T) {
	g := ugraph.PaperFig1()
	const steps, W = 5, 100
	pos := v2Sample(g, 0, steps, W, 1)
	for i := 0; i < W; i++ {
		if pos[i] != 0 {
			t.Fatalf("walk %d starts at %d", i, pos[i])
		}
		dead := false
		for k := 1; k <= steps; k++ {
			cur := pos[k*W+i]
			prev := pos[(k-1)*W+i]
			if dead {
				if cur != -1 {
					t.Fatalf("walk %d resurrected at step %d", i, k)
				}
				continue
			}
			if cur == -1 {
				dead = true
				continue
			}
			if !g.HasArc(int(prev), int(cur)) {
				t.Fatalf("walk %d uses non-arc (%d,%d) at step %d", i, prev, cur, k)
			}
		}
	}
}

func TestV2SampleDeterministicWithSeed(t *testing.T) {
	g := ugraph.PaperFig1()
	a := v2Sample(g, 1, 4, 50, 9)
	b := v2Sample(g, 1, 4, 50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different walks")
		}
	}
}

// TestV2ArenaReuseIsBitStable: a warmed, reused arena must reproduce the
// grid of a fresh one exactly — stale log/instantiation state from a
// previous call must never leak into the next.
func TestV2ArenaReuseIsBitStable(t *testing.T) {
	g := ugraph.PaperFig1()
	p := BuildPlan(g)
	const steps, W = 5, 64
	var a Arena
	warm := make([]int32, (steps+1)*W)
	// Warm the arena on a different source and seed first.
	p.Sample(3, steps, W, rng.New(77), &a, warm)
	p.Sample(0, steps, W, rng.New(12), &a, warm)
	fresh := v2Sample(g, 0, steps, W, 12)
	for i := range fresh {
		if warm[i] != fresh[i] {
			t.Fatal("reused arena changed the sampled walks")
		}
	}
}

// TestV2WalkStepDistribution verifies the v2 sampler against the exact
// k-step transition rows, the same ground truth that pins v1.
func TestV2WalkStepDistribution(t *testing.T) {
	g := ugraph.PaperFig1()
	const N, n, src = 60000, 3, 0
	pos := v2Sample(g, src, n, N, 17)
	rows, err := walkpr.TransitionRows(g, src, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		counts := make(map[int32]int)
		for i := 0; i < N; i++ {
			if v := pos[k*N+i]; v >= 0 {
				counts[v]++
			}
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			got := float64(counts[v]) / N
			want := rows[k].At(v)
			if math.Abs(got-want) > 0.01 {
				t.Fatalf("step %d vertex %d: empirical %v, exact %v", k, v, got, want)
			}
		}
	}
}

// TestV2RevisitConsistency checks the possible-world discipline on the
// p=0.5 self-loop: each walk's instantiation is fixed for its lifetime,
// so a walk that survives step 1 survives every step.
func TestV2RevisitConsistency(t *testing.T) {
	b := ugraph.NewBuilder(1)
	b.AddArc(0, 0, 0.5)
	g := b.MustBuild()
	const steps, W = 10, 5000
	pos := v2Sample(g, 0, steps, W, 31)
	alive := 0
	for i := 0; i < W; i++ {
		first := pos[W+i]
		last := pos[steps*W+i]
		if first != last {
			t.Fatalf("walk %d: self-loop existed at step 1 (%d) but not at step %d (%d)", i, first, steps, last)
		}
		if last == 0 {
			alive++
		}
	}
	frac := float64(alive) / float64(W)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("survival fraction %v, want 0.5", frac)
	}
}

// TestV2MeetingUnbiased verifies the v2 estimator end to end against
// the exact meeting probabilities, like v1's MeetingEstimates test.
func TestV2MeetingUnbiased(t *testing.T) {
	g := ugraph.PaperFig1()
	const N, n = 60000, 3
	u, v := 0, 1
	p := BuildPlan(g)
	var a Arena
	posU := make([]int32, (n+1)*N)
	posV := make([]int32, (n+1)*N)
	r := rng.New(23)
	p.Sample(u, n, N, r, &a, posU)
	p.Sample(v, n, N, r, &a, posV)
	counts := make([]int64, n+1)
	CountMeets(posU, posV, n, N, counts)

	rowsU, err := walkpr.TransitionRows(g, u, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowsV, err := walkpr.TransitionRows(g, v, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= n; k++ {
		got := float64(counts[k]) / N
		want := rowsU[k].Dot(rowsV[k])
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("m̂(%d) = %v, exact %v", k, got, want)
		}
	}
}

// TestV2CountMeetsDeadWalks: the -1 sentinel must never count as a
// meeting, even when both walks are dead at the same step.
func TestV2CountMeetsDeadWalks(t *testing.T) {
	const steps, W = 1, 3
	posU := []int32{0, 0, 0, -1, 2, 5}
	posV := []int32{0, 0, 0, -1, 2, 4}
	counts := make([]int64, steps+1)
	CountMeets(posU, posV, steps, W, counts)
	if counts[0] != 3 {
		t.Fatalf("step 0 meets = %d, want 3", counts[0])
	}
	if counts[1] != 1 { // only the (2,2) pair; (-1,-1) is two dead walks
		t.Fatalf("step 1 meets = %d, want 1", counts[1])
	}
	// Accumulation: a second call adds.
	CountMeets(posU, posV, steps, W, counts)
	if counts[0] != 6 || counts[1] != 2 {
		t.Fatalf("accumulated counts = %v", counts)
	}
}

// TestV2SampleAllocFree pins the kernel's core property: with a warmed
// arena, sampling allocates nothing.
func TestV2SampleAllocFree(t *testing.T) {
	g := ugraph.PaperFig1()
	p := BuildPlan(g)
	const steps, W = 5, 128
	var a Arena
	pos := make([]int32, (steps+1)*W)
	var r rng.RNG
	r.Reseed(7)
	p.Sample(0, steps, W, &r, &a, pos) // warm the high-water marks
	allocs := testing.AllocsPerRun(50, func() {
		r.Reseed(7)
		p.Sample(0, steps, W, &r, &a, pos)
	})
	if allocs != 0 {
		t.Fatalf("warmed Plan.Sample allocates %v per run, want 0", allocs)
	}
}

func BenchmarkV2SampleFig1(b *testing.B) {
	g := ugraph.PaperFig1()
	p := BuildPlan(g)
	var a Arena
	pos := make([]int32, 6*100)
	var r rng.RNG
	r.Reseed(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(0, 5, 100, &r, &a, pos)
	}
}

// The v2 sampling kernel: the same Fig. 4 Monte Carlo estimator as
// Sample/MeetingCounts, rebuilt for raw speed. Three ideas:
//
//   - Structure-of-arrays lockstep walks. A chunk's W walks advance
//     together, one step at a time, over a flat (steps+1)×W position
//     grid; the alive frontier (current vertex + walk index) is
//     compacted each step so dead walks cost nothing. The frontier and
//     the grid row are the only hot state, and both stay cache-resident.
//   - A precomputed Plan per graph. Each CSR row is split into a
//     certain prefix (p = 1 arcs, which every possible world contains)
//     and an uncertain suffix whose Bernoulli flips are precomputed as
//     integer thresholds: flip(p) ⇔ draw>>11 < ⌈p·2^53⌉, bit-identical
//     to rng.Bool(p) (draw>>11 is an integer in [0,2^53) and p·2^53 is
//     exact — multiplying by a power of two only shifts the exponent).
//     Fully-certain rows never flip anything, and degree-1 certain rows
//     consume no randomness at all.
//   - Zero steady-state allocation. All scratch (frontier, bulk RNG
//     draws, instantiated out-sets, per-walk visit logs) lives in a
//     reusable Arena that grows to a high-water mark and is then reused
//     query after query.
//
// The possible-world discipline is exactly v1's: the first time a walk
// steps out of a vertex, all its out-arcs are flipped at once and the
// outcome is remembered for that walk's lifetime; revisits only re-roll
// the uniform choice among the instantiated arcs; a walk at a vertex
// with no instantiated out-arc is dead and can never meet. The
// estimator is therefore unbiased for the same measure as v1. Only the
// order in which randomness is consumed differs (lockstep across walks,
// thresholds instead of Float64 compares, draws skipped where the
// outcome is forced), so v2 is a separately pinned strategy variant,
// not a bit-compatible replacement.
package mc

import (
	"math"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Plan is the precomputed per-vertex arc-sampling structure of one
// graph: immutable after BuildPlan, shared freely across goroutines.
type Plan struct {
	off     []int32  // len n+1: CSR row offsets (arc IDs are repartitioned per row, see dst)
	certEnd []int32  // len n: absolute index into dst where row v's certain (p=1) prefix ends
	dst     []int32  // len m: per row, certain targets first, then uncertain targets
	thr     []uint64 // len m: ⌈p·2^53⌉ flip thresholds, parallel to dst (0 on the certain prefix)
	maxUnc  int      // largest uncertain-arc count of any row, sizing the bulk-draw buffer
}

// BuildPlan precomputes the arc-sampling structure of g. The SimRank
// engine builds one per graph generation over the reversed graph (where
// the walks run) and reuses it for every SamplingV2 query.
func BuildPlan(g *ugraph.Graph) *Plan {
	n := g.NumVertices()
	p := &Plan{
		off:     make([]int32, n+1),
		certEnd: make([]int32, n),
		dst:     make([]int32, g.NumArcs()),
		thr:     make([]uint64, g.NumArcs()),
	}
	for v := 0; v < n; v++ {
		lo, hi := g.ArcRange(v)
		p.off[v], p.off[v+1] = lo, hi
		dsts := g.Out(v)
		probs := g.OutProbs(v)
		w := lo
		for i, pr := range probs {
			if pr >= 1 {
				p.dst[w] = dsts[i]
				w++
			}
		}
		p.certEnd[v] = w
		unc := 0
		for i, pr := range probs {
			if pr < 1 {
				p.dst[w] = dsts[i]
				p.thr[w] = uint64(math.Ceil(pr * (1 << 53)))
				w++
				unc++
			}
		}
		if unc > p.maxUnc {
			p.maxUnc = unc
		}
	}
	return p
}

// NumVertices returns the vertex count of the planned graph.
func (p *Plan) NumVertices() int { return len(p.certEnd) }

// Arena is the reusable scratch of one v2 sampling worker. Buffers grow
// to a high-water mark on first use and are reused afterwards; a warmed
// arena makes Plan.Sample allocation-free. An Arena is single-goroutine
// state — pool one per worker.
type Arena struct {
	cur   []int32  // alive frontier: current vertex per alive walk
	wi    []int32  // alive frontier: original walk index, parallel to cur
	draws []uint64 // bulk RNG draws for one row's uncertain flips
	inst  []int32  // instantiated out-sets of this chunk, log entries point in

	// Per-walk visit log for rows with uncertain arcs: walk w's entries
	// live at stride·w + 0..logCnt[w]-1. A walk takes at most `steps`
	// steps, so `steps` entries per walk always suffice.
	logV     []int32 // instantiated vertex
	logStart []int32 // start of its out-set in inst
	logLen   []int32 // length of its out-set
	logCnt   []int32 // entries used per walk
	stride   int     // log stride (the steps value the log is sized for)
}

func (a *Arena) ensure(steps, w, maxUnc int) {
	if cap(a.cur) < w {
		a.cur = make([]int32, w)
		a.wi = make([]int32, w)
		a.logCnt = make([]int32, w)
	}
	a.cur = a.cur[:w]
	a.wi = a.wi[:w]
	a.logCnt = a.logCnt[:w]
	if need := w * steps; cap(a.logV) < need {
		a.logV = make([]int32, need)
		a.logStart = make([]int32, need)
		a.logLen = make([]int32, need)
	}
	if cap(a.draws) < maxUnc {
		a.draws = make([]uint64, maxUnc)
	}
	a.stride = steps
}

// Sample draws W lockstep walks of length steps from src, writing the
// position grid into pos: pos[k*W+i] is walk i's vertex at step k, or
// -1 once the walk is dead. pos must hold (steps+1)*W entries. The walk
// set is a pure function of (plan, src, steps, W, r's state): every
// query shape slicing the same chunk of a vertex's walk stream gets
// identical bits.
func (p *Plan) Sample(src, steps, W int, r *rng.RNG, a *Arena, pos []int32) {
	a.ensure(steps, W, p.maxUnc)
	pos = pos[:(steps+1)*W]
	for i := 0; i < W; i++ {
		pos[i] = int32(src)
		a.cur[i] = int32(src)
		a.wi[i] = int32(i)
		a.logCnt[i] = 0
	}
	for i := W; i < len(pos); i++ {
		pos[i] = -1
	}
	a.inst = a.inst[:0]
	alive := W
	for k := 1; k <= steps && alive > 0; k++ {
		row := pos[k*W : (k+1)*W]
		na := 0
		for s := 0; s < alive; s++ {
			next := p.step(a.cur[s], a.wi[s], r, a)
			if next >= 0 {
				w := a.wi[s]
				row[w] = next
				// In-place stable compaction: na <= s always, so the
				// frontier slots being written are already consumed.
				a.cur[na] = next
				a.wi[na] = w
				na++
			}
		}
		alive = na
	}
}

// step advances one walk out of vertex v, returning the next vertex or
// -1 when the walk dies there.
func (p *Plan) step(v, walk int32, r *rng.RNG, a *Arena) int32 {
	lo, hi := p.off[v], p.off[v+1]
	ce := p.certEnd[v]
	if ce == hi {
		// Fully certain row: the instantiated out-set is the whole row in
		// every possible world — nothing to flip, nothing to remember.
		switch deg := hi - lo; deg {
		case 0:
			return -1
		case 1:
			return p.dst[lo] // forced choice, no draw consumed
		default:
			return p.dst[lo+int32(r.Uint64n(uint64(deg)))]
		}
	}
	// Row with uncertain arcs: find this walk's remembered
	// instantiation, or flip the row once and log it.
	base := int(walk) * a.stride
	cnt := int(a.logCnt[walk])
	start, length := int32(-1), int32(0)
	for j := 0; j < cnt; j++ {
		if a.logV[base+j] == v {
			start, length = a.logStart[base+j], a.logLen[base+j]
			break
		}
	}
	if start < 0 {
		st := len(a.inst)
		// One capacity check for the whole row, then indexed writes: the
		// target is stored unconditionally and the cursor advances by the
		// flip outcome, so the unpredictable Bernoulli branch never gates
		// a store (the compiler lowers `keep` to a flag set, not a jump).
		need := st + int(hi-lo)
		if cap(a.inst) < need {
			grown := make([]int32, st, max(need, 2*cap(a.inst), 1024))
			copy(grown, a.inst)
			a.inst = grown
		}
		inst := a.inst[:need]
		ni := st + copy(inst[st:], p.dst[lo:ce]) // certain prefix always exists
		nUnc := int(hi - ce)
		draws := a.draws[:nUnc]
		r.Uint64s(draws)
		uncDst := p.dst[ce:hi]
		uncThr := p.thr[ce:hi]
		for t, d := range draws {
			inst[ni] = uncDst[t]
			keep := 0
			if d>>11 < uncThr[t] {
				keep = 1
			}
			ni += keep
		}
		a.inst = inst[:ni]
		start, length = int32(st), int32(ni-st)
		a.logV[base+cnt] = v
		a.logStart[base+cnt] = start
		a.logLen[base+cnt] = length
		a.logCnt[walk] = int32(cnt + 1)
	}
	switch length {
	case 0:
		return -1
	case 1:
		return a.inst[start] // forced choice, no draw consumed
	default:
		return a.inst[start+int32(r.Uint64n(uint64(length)))]
	}
}

// CountMeets adds, for k = 0..steps, the number of walk pairs on the
// same vertex at step k into counts[k] — the v2 form of MeetingCounts
// over two position grids of the same chunk. Dead walks (-1) never
// meet. Integer accumulation keeps per-chunk counts mergeable in any
// order, the same determinism argument as v1.
func CountMeets(posU, posV []int32, steps, W int, counts []int64) {
	for k := 0; k <= steps; k++ {
		ru := posU[k*W : (k+1)*W]
		rv := posV[k*W : (k+1)*W : (k+1)*W]
		var c int64
		for i, u := range ru {
			if u >= 0 && u == rv[i] {
				c++
			}
		}
		counts[k] += c
	}
}

package usimrank_test

import (
	"bytes"
	"math"
	"testing"

	"usimrank"
	"usimrank/internal/graph"
)

func chainGraph(t *testing.T) *usimrank.Graph {
	t.Helper()
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	return b.MustBuild()
}

func TestFacadeQuickstart(t *testing.T) {
	g := chainGraph(t)
	e, err := usimrank.New(g, usimrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Baseline(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1 {
		t.Fatalf("s(0,2) = %v", s)
	}
	// All four algorithms agree to Monte Carlo tolerance.
	e2, err := usimrank.New(g, usimrank.Options{N: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(int, int) (float64, error){
		"Sampling": e2.Sampling,
		"TwoPhase": e2.TwoPhase,
		"SRSP":     e2.SRSP,
	} {
		v, err := f(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-s) > 0.02 {
			t.Fatalf("%s = %v, baseline %v", name, v, s)
		}
	}
}

func TestFacadeTheorem3(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(0, 2)
	b.AddArc(1, 3)
	b.AddArc(2, 3)
	d := b.MustBuild()
	g := usimrank.Certain(d)
	e, err := usimrank.New(g, usimrank.Options{C: 0.8, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Baseline(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := usimrank.DeterministicSimRank(d, 1, 2, 0.8, 4)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("certain graph: %v vs deterministic %v", got, want)
	}
}

func TestFacadeBaselinesExposed(t *testing.T) {
	g := chainGraph(t)
	if v := usimrank.DuSimRank(g, 0, 2, 0.6, 4); v < 0 || v > 1 {
		t.Fatalf("DuSimRank = %v", v)
	}
	if v := usimrank.ExpectedJaccard(g, 0, 2); v < 0 || v > 1 {
		t.Fatalf("ExpectedJaccard = %v", v)
	}
	if v := usimrank.ExpectedDice(g, 0, 2); v < 0 || v > 1 {
		t.Fatalf("ExpectedDice = %v", v)
	}
	if v := usimrank.ExpectedCosine(g, 0, 2); v < 0 || v > 1 {
		t.Fatalf("ExpectedCosine = %v", v)
	}
}

func TestFacadeCodecs(t *testing.T) {
	g := chainGraph(t)
	var txt, bin bytes.Buffer
	if err := usimrank.WriteText(&txt, g); err != nil {
		t.Fatal(err)
	}
	if err := usimrank.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := usimrank.ReadText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := usimrank.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() || g3.NumArcs() != g.NumArcs() {
		t.Fatal("codec round trip changed the graph")
	}
}

func TestFacadeErrorBound(t *testing.T) {
	if usimrank.ErrorBound(0.6, 5) != math.Pow(0.6, 6) {
		t.Fatal("ErrorBound wrong")
	}
}

func TestFacadeTopK(t *testing.T) {
	g := chainGraph(t)
	e, err := usimrank.New(g, usimrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	similar, err := usimrank.TopKSimilar(e, usimrank.AlgBaseline, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(similar) != 2 || similar[0].Score < similar[1].Score {
		t.Fatalf("TopKSimilar wrong: %+v", similar)
	}
	pairs, err := usimrank.TopKPairs(e, usimrank.AlgBaseline, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("TopKPairs returned %d", len(pairs))
	}
	// Top-k runs under the approximate strategies too: SR-SP must agree
	// with its own pairwise scores (checked exhaustively elsewhere) and
	// return a full list here.
	srsp, err := usimrank.TopKSimilar(e, usimrank.AlgSRSP, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(srsp) != 2 {
		t.Fatalf("SR-SP TopKSimilar returned %d", len(srsp))
	}
	// The top pair must score at least as high as any TopKSimilar hit.
	if pairs[0].Score < similar[0].Score-1e-12 {
		t.Fatalf("global top pair %v below single-source top %v", pairs[0].Score, similar[0].Score)
	}
}

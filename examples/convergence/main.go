// Convergence: the paper's Fig. 8 in miniature. Compute the exact
// SimRank iterates s(1), …, s(10) for a handful of vertex pairs on an
// uncertain co-authorship network and watch them stabilise by n ≈ 5,
// within the Theorem 2 bound c^(n+1).
package main

import (
	"fmt"
	"log"
	"math"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

func main() {
	g := gen.CoAuthorship(300, 2, rng.New(3))
	fmt.Printf("co-authorship network: %d authors, %d arcs\n\n", g.NumVertices(), g.NumArcs())

	const c, maxN = 0.6, 10
	engine, err := usimrank.New(g, usimrank.Options{C: c})
	if err != nil {
		log.Fatal(err)
	}

	r := rng.New(17)
	fmt.Printf("%-12s", "pair")
	for n := 1; n <= maxN; n++ {
		fmt.Printf("  s(%d)   ", n)
	}
	fmt.Println()
	shown := 0
	for shown < 5 {
		u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
		if u == v {
			continue
		}
		// Preferential attachment creates hubs whose walk trees explode
		// at large n; the exact method reports this cleanly — back off
		// to the next pair, exactly as a practitioner would.
		series, err := engine.Series(u, v, maxN)
		if err != nil {
			continue
		}
		shown++
		fmt.Printf("(%4d,%4d)", u, v)
		for n := 1; n <= maxN; n++ {
			fmt.Printf("  %.5f", series[n])
		}
		fmt.Println()
		// Verify the Theorem 2 bound along the way.
		for n := 1; n < maxN; n++ {
			if d := math.Abs(series[maxN] - series[n]); d > usimrank.ErrorBound(c, n) {
				log.Fatalf("Theorem 2 violated at n=%d: diff %v > %v", n, d, usimrank.ErrorBound(c, n))
			}
		}
	}
	fmt.Printf("\nall iterates respect |s(n) − s| ≤ c^(n+1); curves flat by n≈5, as in Fig. 8\n")
}

// Quickstart: build a small uncertain graph, compute the SimRank
// similarity of a vertex pair with all four algorithms from the paper,
// and compare against the deterministic and Du-et-al baselines.
package main

import (
	"fmt"
	"log"

	"usimrank"
)

func main() {
	// A small protein-interaction-flavoured uncertain graph: two
	// clusters bridged by a low-confidence interaction.
	b := usimrank.NewBuilder(7)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(0, 2, 0.85)
	b.AddEdge(1, 2, 0.8)
	b.AddEdge(3, 4, 0.9)
	b.AddEdge(3, 5, 0.75)
	b.AddEdge(4, 5, 0.95)
	b.AddEdge(2, 3, 0.2) // uncertain bridge
	b.AddEdge(1, 6, 0.6)
	b.AddEdge(4, 6, 0.6)
	g := b.MustBuild()

	fmt.Printf("uncertain graph: %d vertices, %d arcs, mean probability %.2f\n\n",
		g.NumVertices(), g.NumArcs(), g.MeanProbability())

	opt := usimrank.Options{C: 0.6, Steps: 5, N: 10000, L: 1, Seed: 42}
	engine, err := usimrank.New(g, opt)
	if err != nil {
		log.Fatal(err)
	}

	u, v := 1, 4 // one vertex from each cluster, both adjacent to 6
	exact, err := engine.Baseline(u, v)
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := engine.Sampling(u, v)
	if err != nil {
		log.Fatal(err)
	}
	twoPhase, err := engine.TwoPhase(u, v)
	if err != nil {
		log.Fatal(err)
	}
	srsp, err := engine.SRSP(u, v)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SimRank s(%d,%d) on the uncertain graph:\n", u, v)
	fmt.Printf("  Baseline (exact)   %.6f\n", exact)
	fmt.Printf("  Sampling           %.6f\n", sampled)
	fmt.Printf("  Two-phase (SR-TS)  %.6f\n", twoPhase)
	fmt.Printf("  Speed-up (SR-SP)   %.6f\n", srsp)
	fmt.Printf("  truncation bound   %.4f (Theorem 2, c^(n+1))\n\n", usimrank.ErrorBound(opt.C, opt.Steps))

	fmt.Println("comparison measures:")
	fmt.Printf("  SimRank, uncertainty removed (SimRank-II) %.6f\n",
		usimrank.DeterministicSimRank(g.Skeleton(), u, v, opt.C, opt.Steps))
	fmt.Printf("  Du et al. W(k)=W(1)^k (SimRank-III)       %.6f\n",
		usimrank.DuSimRank(g, u, v, opt.C, opt.Steps))
	fmt.Printf("  expected Jaccard (Jaccard-I)              %.6f\n", usimrank.ExpectedJaccard(g, u, v))
	fmt.Printf("  expected Dice                             %.6f\n", usimrank.ExpectedDice(g, u, v))
	fmt.Printf("  expected cosine                           %.6f\n", usimrank.ExpectedCosine(g, u, v))
}

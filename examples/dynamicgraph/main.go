// Dynamicgraph walks through the incremental update plane: mutate arcs
// of a live engine with Engine.ApplyUpdates and watch the targeted
// invalidation keep warm state alive, then verify the derived engine
// answers bit-identically to a from-scratch rebuild of the mutated
// graph — at a fraction of the cost.
//
// The serving-plane twin of this walkthrough is POST /v1/admin/update
// on usimd, which applies the same batches under live traffic with
// zero downtime (in-flight queries finish on their pinned generation).
package main

import (
	"fmt"
	"log"
	"time"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

func main() {
	// A mid-sized synthetic collaboration network: big enough that a
	// full engine rebuild visibly costs something.
	g := gen.CoAuthorship(3000, 2, rng.New(11))
	fmt.Printf("graph: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())

	opt := usimrank.Options{C: 0.6, Steps: 5, N: 1000, L: 1, Seed: 7}
	engine, err := usimrank.New(g, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Warm the engine the way serving traffic would: SR-SP filter pools
	// plus the row cache for a spread of sources.
	warmStart := time.Now()
	engine.WarmFilters()
	sources := make([]int, 0, 1000)
	for v := 0; v < g.NumVertices(); v += 3 {
		sources = append(sources, v)
	}
	if err := engine.WarmRowsFor(usimrank.AlgTwoPhase, sources); err != nil {
		log.Fatal(err)
	}
	rows, _ := engine.RowCacheStats()
	fmt.Printf("warmed: SR-SP filter pools + %d cached row sets in %v\n\n", rows, time.Since(warmStart).Round(time.Millisecond))

	u, v := 42, 137
	before, err := engine.SRSP(u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before updates: s(%d,%d) = %.6f  [generation %d]\n\n", u, v, before, engine.Generation())

	// A mixed mutation batch: a collaboration strengthens, one
	// dissolves, and a new low-confidence link appears.
	var free usimrank.ArcUpdate
	for w := 0; w < g.NumVertices(); w++ {
		if !g.HasArc(u, w) && u != w {
			free = usimrank.ArcUpdate{Op: usimrank.OpInsert, U: u, V: w, P: 0.3}
			break
		}
	}
	delU := -1
	var delV int
	for w := 0; w < g.NumVertices(); w++ {
		if out := g.Out(w); len(out) > 0 {
			delU, delV = w, int(out[0])
			break
		}
	}
	updates := []usimrank.ArcUpdate{
		{Op: usimrank.OpReweight, U: delU, V: delV, P: 0.99},
		{Op: usimrank.OpDelete, U: delU, V: delV},
		free,
	}
	// Note the first two touch the same arc: staged updates compose, so
	// a reweight followed by a delete nets out to the delete.

	applyStart := time.Now()
	derived, stats, err := engine.ApplyUpdates(updates)
	if err != nil {
		log.Fatal(err)
	}
	applyTime := time.Since(applyStart)
	fmt.Printf("ApplyUpdates: %d arcs changed in %v\n", stats.Applied, applyTime.Round(time.Microsecond))
	fmt.Printf("  generation            %d -> %d\n", engine.Generation(), derived.Generation())
	fmt.Printf("  row cache             %d evicted, %d retained (%.1f%% invalidated, horizon %d)\n",
		stats.RowsEvicted, stats.RowsRetained,
		100*float64(stats.RowsEvicted)/float64(stats.RowsEvicted+stats.RowsRetained), stats.HorizonDepth)
	fmt.Printf("  SR-SP filter pools    patched=%v, %d vertices re-sampled (of %d)\n\n",
		stats.FiltersPatched, stats.FilterVerticesRebuilt, 2*g.NumVertices())

	// The old engine is untouched — in-flight queries would still be
	// computing on it.
	stillBefore, err := engine.SRSP(u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old engine still answers the old graph: s(%d,%d) = %.6f\n", u, v, stillBefore)

	// Bit-identity: the derived engine equals a from-scratch rebuild of
	// the mutated graph.
	rebuildStart := time.Now()
	rebuilt, err := usimrank.New(derived.Graph(), opt)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt.WarmFilters()
	rebuildTime := time.Since(rebuildStart)

	for _, alg := range usimrank.Algorithms() {
		a, err := derived.Compute(alg, u, v)
		if err != nil {
			log.Fatal(err)
		}
		b, err := rebuilt.Compute(alg, u, v)
		if err != nil {
			log.Fatal(err)
		}
		match := "BIT-IDENTICAL"
		if a != b {
			match = "MISMATCH (bug!)"
		}
		fmt.Printf("  %-10v derived %.9f  rebuilt %.9f  %s\n", alg, a, b, match)
	}
	fmt.Printf("\nincremental apply %v vs rebuild+warm %v (%.0fx)\n",
		applyTime.Round(time.Microsecond), rebuildTime.Round(time.Millisecond),
		float64(rebuildTime)/float64(applyTime))
}

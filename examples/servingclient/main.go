// Command servingclient is a walkthrough client for the usimd serving
// plane: it drives every endpoint of the v1 API against a running
// daemon and prints the responses.
//
//	usim-gen -kind rmat -scale 10 -out g.ug
//	usimd -graph g.ug -addr :8471 &
//	go run ./examples/servingclient -addr http://localhost:8471 -reload g.ug
//
// With -reload it also exercises the zero-downtime hot-swap while a
// burst of identical concurrent queries is in flight, then shows the
// coalescing counters from /v1/stats.
//
// The same client works unchanged against a cluster coordinator — the
// wire format is identical by design, and the answers are
// bit-identical to a single node's:
//
//	usimd -graph g.ug -addr :8471 &   # shard 0
//	usimd -graph g.ug -addr :8472 &   # shard 1
//	usimd -cluster shard0=http://localhost:8471,shard1=http://localhost:8472 -addr :8470 &
//	go run ./examples/servingclient -addr http://localhost:8470 -reload g.ug
//
// Against a coordinator, -reload demonstrates the transactional admin
// fan-out: every shard acknowledges the same new generation or the
// coordinator reports a generation-skew error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
)

func main() {
	addr := flag.String("addr", "http://localhost:8471", "usimd base URL")
	alg := flag.String("alg", "srsp", "algorithm for the example queries")
	reload := flag.String("reload", "", "graph file to hot-swap to (server-side path; empty skips the reload demo)")
	flag.Parse()

	// One pairwise score.
	var score struct {
		Score     float64 `json:"score"`
		Coalesced bool    `json:"coalesced"`
	}
	post(*addr+"/v1/score", map[string]any{"alg": *alg, "u": 0, "v": 1}, &score)
	fmt.Printf("score(0,1)      = %.8f\n", score.Score)

	// Single-source against a candidate set.
	var source struct {
		Scores []float64 `json:"scores"`
	}
	post(*addr+"/v1/source", map[string]any{"alg": *alg, "u": 0, "candidates": []int{1, 2, 3}}, &source)
	fmt.Printf("s(0, {1,2,3})   = %v\n", source.Scores)

	// Top-k similar to vertex 0.
	var topk struct {
		Results []struct {
			U, V  int
			Score float64
		} `json:"results"`
	}
	post(*addr+"/v1/topk", map[string]any{"alg": *alg, "u": 0, "k": 5}, &topk)
	fmt.Printf("top-5 of 0      = %v\n", topk.Results)

	// Top-k pairs over the whole graph — against a coordinator this
	// scatter-gathers every shard's partial top-k and k-way merges.
	var pairs struct {
		Results []struct {
			U, V  int
			Score float64
		} `json:"results"`
	}
	post(*addr+"/v1/topk", map[string]any{"alg": *alg, "k": 5}, &pairs)
	fmt.Printf("top-5 pairs     = %v\n", pairs.Results)

	// A batch, grouped by source server-side.
	var batch struct {
		Results []struct {
			U, V  int
			Score float64
			Error string
		} `json:"results"`
	}
	post(*addr+"/v1/batch", map[string]any{"alg": *alg, "pairs": [][2]int{{0, 1}, {0, 2}, {3, 4}}}, &batch)
	fmt.Printf("batch           = %v\n", batch.Results)

	if *reload != "" {
		// Hot-swap under load: fire a burst of identical queries (they
		// coalesce server-side) while the reload runs.
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var r struct {
					Score float64 `json:"score"`
				}
				post(*addr+"/v1/score", map[string]any{"alg": *alg, "u": 0, "v": 1}, &r)
			}()
		}
		var rel struct {
			Generation uint64 `json:"generation"`
			Vertices   int    `json:"vertices"`
			Drained    bool   `json:"drained"`
		}
		post(*addr+"/v1/admin/reload", map[string]any{"graph": *reload, "warm": true}, &rel)
		wg.Wait()
		fmt.Printf("reload          = generation %d, %d vertices, drained=%v\n", rel.Generation, rel.Vertices, rel.Drained)
	}

	// The metrics snapshot.
	resp, err := http.Get(*addr + "/v1/stats")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Graph      struct{ Generation uint64 } `json:"graph"`
		Coalescing struct {
			Hits    uint64  `json:"hits"`
			HitRate float64 `json:"hit_rate"`
		} `json:"coalescing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fail(err)
	}
	fmt.Printf("stats           = generation %d, coalesce hits %d (rate %.2f)\n",
		stats.Graph.Generation, stats.Coalescing.Hits, stats.Coalescing.HitRate)
}

func post(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error struct{ Code, Message string } `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		fail(fmt.Errorf("%s: %d %s %s", url, resp.StatusCode, e.Error.Code, e.Error.Message))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "servingclient:", err)
	os.Exit(1)
}

// Proteins: the paper's first case study (Sec. VII-C, Figs. 13–14).
// Generate an uncertain PPI network with planted protein complexes,
// rank protein pairs by uncertain-graph SimRank (USIM) and by SimRank
// with uncertainty removed (DSIM), and score the top-20 of each against
// the planted ground truth. The uncertain measure should recover far
// more co-complex pairs, mirroring the paper's 16/20 vs 6/20.
package main

import (
	"fmt"
	"log"
	"sort"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

func main() {
	cfg := gen.DefaultPPIConfig(250)
	ppi := gen.PlantedPPI(cfg, rng.New(7))
	g := ppi.Graph
	fmt.Printf("PPI network: %d proteins, %d interactions, %d planted complexes\n\n",
		g.NumVertices(), g.NumArcs()/2, len(ppi.Complexes))

	engine, err := usimrank.New(g, usimrank.Options{Seed: 7, RowCacheSize: g.NumVertices() + 1})
	if err != nil {
		log.Fatal(err)
	}
	opt := engine.Options()
	sk := g.Skeleton()

	type pair struct {
		u, v int
		s    float64
	}
	var usim, dsim []pair
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			su, err := engine.Baseline(u, v)
			if err != nil {
				log.Fatal(err)
			}
			usim = append(usim, pair{u, v, su})
			dsim = append(dsim, pair{u, v, usimrank.DeterministicSimRank(sk, u, v, opt.C, opt.Steps)})
		}
	}
	top20 := func(ps []pair) []pair {
		sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
		return ps[:20]
	}

	report := func(label string, ps []pair) int {
		hits := 0
		fmt.Printf("top-20 similar protein pairs by %s:\n", label)
		for _, p := range ps {
			mark := " "
			if ppi.SameComplex(p.u, p.v) {
				mark = "*"
				hits++
			}
			fmt.Printf("  %s (%3d,%3d) %.5f\n", mark, p.u, p.v, p.s)
		}
		fmt.Printf("  → %d/20 pairs share a planted complex\n\n", hits)
		return hits
	}
	uh := report("USIM (uncertain SimRank)", top20(usim))
	dh := report("DSIM (uncertainty removed)", top20(dsim))
	fmt.Printf("verdict: USIM %d/20 vs DSIM %d/20 co-complex pairs (paper: 16 vs 6)\n", uh, dh)
}

// Entity resolution: the paper's second case study (Sec. VII-C,
// Tables IV–V). Generate bibliographic records where several distinct
// authors share a name, build the uncertain record-similarity graph, and
// resolve records into authors with four algorithms: EIF, a
// DISTINCT-style resolver, SimER (uncertain-graph SimRank) and SimDER
// (deterministic SimRank). Report pairwise precision / recall / F1 per
// ambiguous name.
package main

import (
	"fmt"
	"log"

	"usimrank/internal/core"
	"usimrank/internal/er"
	"usimrank/internal/rng"
)

func main() {
	ds := er.Generate(er.Config{}, 300, rng.New(11))
	names, blocks := er.Blocks(ds)
	fmt.Printf("generated %d records for %d authors across %d ambiguous names\n\n",
		len(ds.Records), len(ds.Authors), len(names))

	opt := core.Options{Seed: 11, N: 500, Steps: 4}
	algos := []er.Resolver{er.SimER, er.SimDER, er.EIF, er.DISTINCT}

	fmt.Printf("%-16s %-10s %8s %8s %8s\n", "name", "resolver", "P", "R", "F1")
	avg := map[er.Resolver][3]float64{}
	for _, name := range names {
		block := blocks[name]
		truth := er.BlockTruth(block)
		for _, alg := range algos {
			clusters, err := er.Resolve(alg, block, er.Thresholds{}, opt)
			if err != nil {
				log.Fatal(err)
			}
			p, r, f1 := er.PairwisePRF(clusters, truth)
			fmt.Printf("%-16s %-10s %8.3f %8.3f %8.3f\n", name, alg, p, r, f1)
			s := avg[alg]
			s[0] += p
			s[1] += r
			s[2] += f1
			avg[alg] = s
		}
	}
	fmt.Println()
	n := float64(len(names))
	for _, alg := range algos {
		s := avg[alg]
		fmt.Printf("average %-10s P=%.3f R=%.3f F1=%.3f\n", alg, s[0]/n, s[1]/n, s[2]/n)
	}
	fmt.Println("\nexpected shape (paper Table V): SimER best F1, largest recall gap vs EIF/DISTINCT")
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the design ablations of DESIGN.md §5. Each
// benchmark wraps the corresponding internal/exp runner at the Tiny
// scale so the full suite runs in minutes; `cmd/usim-exp -scale small`
// (or `paper`) runs the same experiments at larger sizes.
package usimrank_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"usimrank"
	"usimrank/internal/exp"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

func benchCfg() exp.Config {
	return exp.Config{Scale: gen.Tiny, Seed: 1, Out: io.Discard}
}

// BenchmarkSRSPParallel sweeps the engine's Parallelism knob over the
// SR-SP matrix sweep (the amortised all-pairs hot path): one RMAT bench
// graph, fixed seed, 1/2/4/8 workers. The estimates are bit-identical
// across the sweep — only wall time may change — and on multi-core
// hardware the 4-worker leg is expected to run ≥2× faster than the
// 1-worker leg. Filter-pool construction (the paper's offline phase) is
// excluded from the timed region.
func BenchmarkSRSPParallel(b *testing.B) {
	g := gen.WithUniformProbs(gen.RMAT(10, 8192, 0.45, 0.22, 0.22, rng.New(1)), 0.2, 0.9, rng.New(2))
	verts := make([]int, 48)
	for i := range verts {
		verts[i] = (i * 17) % g.NumVertices()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := usimrank.New(g, usimrank.Options{N: 2048, Seed: 1, Parallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.SRSP(0, 1); err != nil { // build filter pools offline
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SRSPMatrix(verts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleSource compares the one-pass single-source kernels
// against the pairwise loop they replace, for the two sampling-heavy
// strategies. The kernel does the source's work (walk sampling for
// Sampling, counting-table propagation for SR-SP) once for the whole
// sweep instead of once per candidate, so it is expected to run ≥1.5×
// faster than the pairwise loop; the scores are bit-identical (pinned
// by TestSingleSourceMatchesPairwiseBitForBit). Filter-pool
// construction (the paper's offline phase) is excluded from the timed
// region.
func BenchmarkSingleSource(b *testing.B) {
	g := gen.WithUniformProbs(gen.RMAT(9, 4096, 0.45, 0.22, 0.22, rng.New(1)), 0.2, 0.9, rng.New(2))
	for _, alg := range []usimrank.Algorithm{usimrank.AlgSampling, usimrank.AlgSRSP} {
		e, err := usimrank.New(g, usimrank.Options{N: 1024, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Compute(alg, 0, 1); err != nil { // build filter pools offline
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%v/kernel", alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.SingleSource(alg, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/pairwise", alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for v := 0; v < g.NumVertices(); v++ {
					if _, err := e.Compute(alg, 0, v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSamplingV2 is the v1-vs-v2 head-to-head for the raw-speed
// sampling kernel: the same RMAT bench graph, seed, and N as
// BenchmarkSingleSource, one worker, both kernels warmed before the
// timed region. The v2 legs run the structure-of-arrays lockstep walks
// over the precomputed arc-sampling plan; the v1 legs run the original
// per-walk kernel. The bench gate enforces a ≥2× v2-over-v1 geomean and
// 0 allocs/op on every v2 leg (the arena and scratch pools make the
// steady state allocation-free); the estimates themselves are pinned
// equal to the oracle by TestSampledAlgorithmsConvergeToOracle and
// bit-stable by TestSamplingV2Golden.
func BenchmarkSamplingV2(b *testing.B) {
	g := gen.WithUniformProbs(gen.RMAT(9, 4096, 0.45, 0.22, 0.22, rng.New(1)), 0.2, 0.9, rng.New(2))
	n := g.NumVertices()
	e, err := usimrank.New(g, usimrank.Options{N: 1024, Seed: 1, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []usimrank.Algorithm{usimrank.AlgSampling, usimrank.AlgSamplingV2} {
		if _, err := e.Compute(alg, 0, 1); err != nil { // build the v2 plan + warm the pools offline
			b.Fatal(err)
		}
	}
	cands := make([]int, 64)
	for i := range cands {
		cands[i] = (i * 13) % n
	}
	out := make([]float64, len(cands))
	for _, alg := range []usimrank.Algorithm{usimrank.AlgSampling, usimrank.AlgSamplingV2} {
		if err := e.SingleSourceAgainstInto(alg, 0, cands, out); err != nil { // size the scratch pools
			b.Fatal(err)
		}
	}
	legs := []struct {
		name string
		alg  usimrank.Algorithm
	}{
		{"v1", usimrank.AlgSampling},
		{"v2", usimrank.AlgSamplingV2},
	}
	for _, leg := range legs {
		b.Run("score/"+leg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Compute(leg.alg, i%n, (i*7+1)%n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, leg := range legs {
		b.Run("source/"+leg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := e.SingleSourceAgainstInto(leg.alg, i%n, cands, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptiveScore compares the adaptive (ε, δ) pair query
// against the fixed-N kernel it wraps, at a serving-realistic ε. The
// adaptive path stops as soon as its empirical-Bernstein radius drops
// under ε, so on typical (low-variance) pairs it samples a fraction of
// the fixed budget; walks/op reports the actual spend. Accuracy is
// pinned separately by TestAdaptiveConvergesToOracle.
func BenchmarkAdaptiveScore(b *testing.B) {
	g := gen.WithUniformProbs(gen.RMAT(9, 4096, 0.45, 0.22, 0.22, rng.New(1)), 0.2, 0.9, rng.New(2))
	n := g.NumVertices()
	e, err := usimrank.New(g, usimrank.Options{N: 4096, Seed: 1, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Compute(usimrank.AlgSamplingV2, 0, 1); err != nil { // build the v2 plan offline
		b.Fatal(err)
	}
	ao := usimrank.AdaptiveOptions{Eps: 0.03, Delta: 0.05}
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		var walks int64
		for i := 0; i < b.N; i++ {
			res, err := e.AdaptiveCompute(usimrank.AlgSamplingV2, i%n, (i*7+1)%n, ao)
			if err != nil {
				b.Fatal(err)
			}
			walks += res.Walks
		}
		b.ReportMetric(float64(walks)/float64(b.N), "walks/op")
	})
	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Compute(usimrank.AlgSamplingV2, i%n, (i*7+1)%n); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(e.Options().N), "walks/op")
	})
}

// BenchmarkAdaptiveSource is the single-source analogue: one shared
// source-side walk grid, per-candidate chunk streams, candidates
// freezing individually as their radii converge. Compared against the
// fixed-N single-source kernel over the same candidate set.
func BenchmarkAdaptiveSource(b *testing.B) {
	g := gen.WithUniformProbs(gen.RMAT(9, 4096, 0.45, 0.22, 0.22, rng.New(1)), 0.2, 0.9, rng.New(2))
	n := g.NumVertices()
	e, err := usimrank.New(g, usimrank.Options{N: 4096, Seed: 1, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Compute(usimrank.AlgSamplingV2, 0, 1); err != nil { // build the v2 plan offline
		b.Fatal(err)
	}
	cands := make([]int, 64)
	for i := range cands {
		cands[i] = (i * 13) % n
	}
	ao := usimrank.AdaptiveOptions{Eps: 0.03, Delta: 0.05}
	ctx := context.Background()
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		var walks int64
		for i := 0; i < b.N; i++ {
			res, err := e.AdaptiveSingleSourceAgainstCtx(ctx, usimrank.AlgSamplingV2, i%n, cands, ao)
			if err != nil {
				b.Fatal(err)
			}
			walks += res.Walks
		}
		b.ReportMetric(float64(walks)/float64(b.N), "walks/op")
	})
	out := make([]float64, len(cands))
	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := e.SingleSourceAgainstInto(usimrank.AlgSamplingV2, i%n, cands, out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(e.Options().N), "walks/op")
	})
}

func BenchmarkTable1WalkPr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1WalkPr(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2Datasets(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Bias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7Table3Bias(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8Convergence(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9Efficiency(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10Accuracy(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11NSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11NSweep(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12Scalability(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Proteins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13Proteins(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15ERTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig15ERTime(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5ERQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5ERQuality(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSharedFilters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationSharedFilters(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChoicePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationChoicePolicy(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStateMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationStateMerge(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGirth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationGirth(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationLSweep(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDiskTransPr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationDiskTransPr(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedSingleSource compares the precomputed reverse-walk
// index path against the sampling kernel it shortcuts, on the
// 10k-vertex serving bench graph at equal N. The sampling kernel walks
// both sides per query; the indexed path samples only the source side
// and dots it against the index rows, so it is expected to run ≥5×
// faster (enforced by the bench gate). Index construction — the
// offline phase usim-index pays once per graph generation — is
// excluded from the timed region; accuracy is pinned separately by
// TestIndexedConvergesToOracle and TestIndexedTracksSampling.
func BenchmarkIndexedSingleSource(b *testing.B) {
	g := gen.CoAuthorship(10_000, 2, rng.New(5))
	e, err := usimrank.New(g, usimrank.Options{N: 1000, Seed: 1, L: 1, RowCacheSize: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := usimrank.BuildIndex(e)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SingleSourceIndexed(idx, i%g.NumVertices()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SingleSource(usimrank.AlgSampling, i%g.NumVertices()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchUpdateGraph builds the 10k-vertex dynamic-update bench graph and
// a serving-shaped engine over it: two-phase split l = 1, warm SR-SP
// filter pools, and the row cache warmed for every vertex — the state a
// loaded usimd process is in when a mutation arrives.
func benchUpdateGraph(b *testing.B) (*usimrank.Graph, *usimrank.Engine, []usimrank.ArcUpdate) {
	b.Helper()
	g := gen.CoAuthorship(10_000, 2, rng.New(5))
	e, err := usimrank.New(g, usimrank.Options{N: 1000, Seed: 1, L: 1, RowCacheSize: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	e.WarmFilters()
	all := make([]int, g.NumVertices())
	for i := range all {
		all[i] = i
	}
	if err := e.WarmRowsFor(usimrank.AlgTwoPhase, all); err != nil {
		b.Fatal(err)
	}
	for w := 0; w < g.NumVertices(); w++ {
		if len(g.Out(w)) > 0 {
			return g, e, []usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: w, V: int(g.Out(w)[0]), P: 0.5}}
		}
	}
	b.Fatal("bench graph has no arcs")
	return nil, nil, nil
}

// BenchmarkApplyUpdates measures the incremental path of the dynamic
// update plane: one single-arc reweight on the warm 10k-vertex engine,
// including CSR compaction, targeted row-cache invalidation, and
// per-vertex filter patching. Compare against BenchmarkEngineRebuild,
// the cost the same mutation paid before this plane existed (a full
// reload): the incremental path is expected to be ≥10× faster, and the
// reported invalidated_frac must stay well under 0.20 (also pinned by
// TestUpdateInvalidationBounded10k).
func BenchmarkApplyUpdates(b *testing.B) {
	_, e, ups := benchUpdateGraph(b)
	b.ResetTimer()
	var lastEvicted, lastTotal int
	for i := 0; i < b.N; i++ {
		_, stats, err := e.ApplyUpdates(ups)
		if err != nil {
			b.Fatal(err)
		}
		lastEvicted = stats.RowsEvicted
		lastTotal = stats.RowsEvicted + stats.RowsRetained
	}
	if lastTotal > 0 {
		b.ReportMetric(float64(lastEvicted)/float64(lastTotal), "invalidated_frac")
	}
}

// BenchmarkEngineRebuild measures the pre-update-plane cost of the same
// single-arc mutation: rebuild the engine from the mutated graph and
// re-warm the filter pools (what POST /v1/admin/reload pays), leaving
// every row cold on top.
func BenchmarkEngineRebuild(b *testing.B) {
	g, e, ups := benchUpdateGraph(b)
	mut, err := g.Apply(ups)
	if err != nil {
		b.Fatal(err)
	}
	opt := e.Options()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := usimrank.New(mut, opt)
		if err != nil {
			b.Fatal(err)
		}
		fresh.WarmFilters()
	}
}

package usimrank_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"usimrank"
)

// FuzzLoadGraphFile exercises the shared disk loader of cmd/usim,
// cmd/usimd and the serving plane's hot-swap path: arbitrary file
// contents — including ones that start with the binary magic but are
// otherwise garbage, which is exactly what the format sniffing must
// survive — either error cleanly or produce a graph both codecs can
// round-trip.
func FuzzLoadGraphFile(f *testing.F) {
	f.Add([]byte("ug 3 2\n0 1 0.5\n1 2 0.25\n"))
	f.Add([]byte("USGR")) // binary magic, truncated body
	f.Add([]byte(""))
	f.Add([]byte("USGR\x01\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	b := usimrank.NewBuilder(3)
	b.AddArc(0, 1, 0.5)
	var bin bytes.Buffer
	if err := usimrank.WriteBinary(&bin, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "graph")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := usimrank.LoadGraphFile(path)
		if err != nil {
			return // clean rejection
		}
		var out bytes.Buffer
		if err := usimrank.WriteText(&out, g); err != nil {
			t.Fatalf("accepted graph fails text serialisation: %v", err)
		}
		if _, err := usimrank.ReadText(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("text round-trip rejected: %v", err)
		}
		out.Reset()
		if err := usimrank.WriteBinary(&out, g); err != nil {
			t.Fatalf("accepted graph fails binary serialisation: %v", err)
		}
		if _, err := usimrank.ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("binary round-trip rejected: %v", err)
		}
	})
}

// Package usimrank computes SimRank similarities on uncertain graphs,
// implementing "SimRank Computation on Uncertain Graphs" (Zhu, Zou, Li —
// ICDE 2016) under the possible-world model.
//
// An uncertain graph assigns each directed arc an independent existence
// probability. SimRank on such a graph cannot reuse deterministic
// algorithms: the k-step transition matrix W(k) is not the k-th power of
// the one-step matrix W(1), because arc existence is sampled once per
// possible world and therefore couples the transitions of a walk that
// revisits a vertex. This package provides the paper's measure and its
// four computation strategies:
//
//   - Baseline — exact, via walk-probability dynamic programming;
//   - Sampling — Monte Carlo with lazily instantiated possible worlds;
//   - TwoPhase (SR-TS) — exact meeting probabilities for short walks,
//     sampled for long ones, with an order-of-magnitude accuracy gain at
//     comparable cost;
//   - SRSP (SR-SP) — TwoPhase with a bit-vector technique that runs all
//     N sampling processes simultaneously.
//
// The engine serves five query shapes on one shared substrate (LRU row
// cache, SR-SP filter pools, bounded worker pool): pairwise
// Engine.Compute, one-pass single-source Engine.SingleSource (u's rows,
// walks, or propagations computed once and replayed against every
// candidate), top-k via TopKSimilar/TopKPairs under any algorithm,
// matrix sweeps via Engine.SRSPMatrix, and Batch, which groups
// arbitrary pairs by source so shared u-side work is paid once.
//
// All sampling strategies execute on a bounded worker pool controlled by
// Options.Parallelism (default runtime.GOMAXPROCS(0)): Monte Carlo
// samples are fanned out in fixed-size chunks whose RNG streams depend
// only on (seed, vertex, side) in chunk order, and SR-SP filter
// construction, propagations, and matrix sweeps are decomposed into
// disjoint per-vertex tasks. Results are therefore bit-identical for
// every Parallelism value and every query shape — raising the knob or
// switching pairwise loops to kernels changes only wall time.
//
// Quick start:
//
//	b := usimrank.NewBuilder(4)
//	b.AddEdge(0, 1, 0.9)
//	b.AddEdge(1, 2, 0.5)
//	b.AddEdge(2, 3, 0.8)
//	g := b.MustBuild()
//	e, _ := usimrank.New(g, usimrank.Options{})
//	s, _ := e.Baseline(0, 2)
//
// The subpackages under internal/ contain the substrates (walk
// probability machinery, disk-backed TransPr, deterministic and Du-et-al
// baselines, expected Jaccard/Dice/cosine measures, dataset generators,
// the entity-resolution case study, and the experiment harness that
// regenerates every table and figure of the paper).
package usimrank

import (
	"bufio"
	"context"
	"io"
	"os"

	"usimrank/internal/core"
	"usimrank/internal/detsim"
	"usimrank/internal/dusim"
	"usimrank/internal/graph"
	"usimrank/internal/index"
	"usimrank/internal/simmeasure"
	"usimrank/internal/topk"
	"usimrank/internal/ugraph"
)

// Graph is an uncertain directed graph: arcs carry independent existence
// probabilities in (0, 1].
type Graph = ugraph.Graph

// Builder accumulates probabilistic arcs for a Graph.
type Builder = ugraph.Builder

// NewBuilder returns a builder for an uncertain graph with n vertices.
func NewBuilder(n int) *Builder { return ugraph.NewBuilder(n) }

// DeterministicGraph is a plain directed graph (the possible worlds of a
// Graph, and the input of the deterministic baselines).
type DeterministicGraph = graph.Graph

// Options configures an Engine. The zero value selects the paper's
// defaults: c = 0.6, n = 5, N = 1000, l = 1, and a worker pool sized to
// runtime.GOMAXPROCS(0) (the Parallelism field).
type Options = core.Options

// Engine computes SimRank similarities on one uncertain graph. It is
// safe for concurrent use: one engine can serve queries from many
// goroutines, and each query also parallelises its own sampling work
// across the engine's pool. Results never depend on scheduling.
type Engine = core.Engine

// New builds an Engine for g.
func New(g *Graph, opt Options) (*Engine, error) { return core.NewEngine(g, opt) }

// Algorithm selects one of the computation strategies for Compute and
// Batch.
type Algorithm = core.Algorithm

// The four algorithms of the paper's Sec. VI, plus SamplingV2 — the
// allocation-free, cache-aware rewrite of the Monte Carlo kernel (same
// estimator and accuracy bounds as AlgSampling, different randomness
// consumption, roughly 2x faster; see the README's "Kernel v2"
// section).
const (
	AlgBaseline   = core.AlgBaseline
	AlgSampling   = core.AlgSampling
	AlgTwoPhase   = core.AlgTwoPhase
	AlgSRSP       = core.AlgSRSP
	AlgSamplingV2 = core.AlgSamplingV2
)

// Algorithms lists the strategies in canonical order.
func Algorithms() []Algorithm { return core.Algorithms() }

// ParseAlgorithm maps a user-facing algorithm name ("baseline",
// "sampling", "twophase"/"sr-ts", "srsp"/"sr-sp", "sampling_v2",
// case-insensitive) to its Algorithm — the one parser shared by the CLI
// and the serving plane.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// PairResult is one outcome of a Batch computation.
type PairResult = core.PairResult

// Batch computes the similarities of many pairs concurrently on one
// shared engine (its row cache and SR-SP filter pools are reused across
// all workers), returning results in input order. Results are identical
// to sequential computation (per-query randomness depends only on the
// seed and the pair). workers < 1 selects the engine's Parallelism
// option.
func Batch(e *Engine, alg Algorithm, pairs [][2]int, workers int) []PairResult {
	return core.Batch(e, alg, pairs, workers)
}

// BatchCtx is Batch with cancellation: once ctx is done, unstarted
// source groups and sample chunks are skipped and ctx.Err() is
// returned instead of partial results. (The pairwise and single-source
// shapes are cancellable through the Engine.ComputeCtx and
// Engine.SingleSourceCtx methods.)
func BatchCtx(ctx context.Context, e *Engine, alg Algorithm, pairs [][2]int, workers int) ([]PairResult, error) {
	return core.BatchCtx(ctx, e, alg, pairs, workers)
}

// Certain embeds a deterministic graph as an uncertain graph whose arcs
// all have probability 1 (Theorem 3: SimRank then coincides with
// deterministic SimRank).
func Certain(d *DeterministicGraph) *Graph { return ugraph.Certain(d) }

// ArcUpdate is one staged arc mutation for the dynamic update plane:
// insert, delete, or reweight one probabilistic arc. Apply a batch with
// Engine.ApplyUpdates, which derives a new-generation engine carrying
// over all warm state the mutation provably cannot have changed.
type ArcUpdate = ugraph.ArcUpdate

// UpdateOp selects the kind of one ArcUpdate.
type UpdateOp = ugraph.UpdateOp

// The three arc mutations.
const (
	OpInsert   = ugraph.OpInsert
	OpDelete   = ugraph.OpDelete
	OpReweight = ugraph.OpReweight
)

// ParseUpdateOp maps a user-facing op name ("insert", "delete",
// "reweight", plus short forms "ins"/"del"/"rw") to its UpdateOp — the
// one parser shared by the CLI and the serving plane.
func ParseUpdateOp(s string) (UpdateOp, error) { return ugraph.ParseUpdateOp(s) }

// UpdateStats reports what one Engine.ApplyUpdates call retained and
// invalidated.
type UpdateStats = core.UpdateStats

// ReadText parses the textual uncertain-graph format
// ("ug <n> <m>" header, then "<u> <v> <p>" lines).
func ReadText(r io.Reader) (*Graph, error) { return ugraph.ReadText(r) }

// WriteText serialises g in the textual format.
func WriteText(w io.Writer, g *Graph) error { return ugraph.WriteText(w, g) }

// ReadBinary parses the binary uncertain-graph format.
func ReadBinary(r io.Reader) (*Graph, error) { return ugraph.ReadBinary(r) }

// LoadGraphFile reads an uncertain graph from disk, auto-detecting the
// format: files starting with the USGR magic parse as binary,
// everything else as text. The shared loader of cmd/usim, cmd/usimd,
// and the serving plane's hot-swap path.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(4); err == nil && string(magic) == "USGR" {
		return ReadBinary(br)
	}
	return ReadText(br)
}

// WriteBinary serialises g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error { return ugraph.WriteBinary(w, g) }

// DeterministicSimRank computes the n-th random-walk SimRank iterate on
// a deterministic graph (the paper's SimRank-II / DSIM baseline).
func DeterministicSimRank(g *DeterministicGraph, u, v int, c float64, n int) float64 {
	return detsim.SinglePair(g, u, v, c, n)
}

// DuSimRank computes SimRank under the W(k) = W(1)^k assumption of Du et
// al. (the paper's SimRank-III baseline). It is exact only when walks of
// length ≤ n cannot revisit a vertex; the package exists so the bias of
// that assumption is measurable.
func DuSimRank(g *Graph, u, v int, c float64, n int) float64 {
	return dusim.SinglePair(g, u, v, c, n)
}

// ExpectedJaccard computes the expected Jaccard similarity of the
// out-neighbourhoods of u and v over possible worlds (the paper's
// Jaccard-I comparison measure, after Zou & Li).
func ExpectedJaccard(g *Graph, u, v int) float64 {
	return simmeasure.ExpectedJaccard(g, u, v)
}

// ExpectedDice computes the expected Dice similarity over possible
// worlds.
func ExpectedDice(g *Graph, u, v int) float64 {
	return simmeasure.ExpectedDice(g, u, v)
}

// ExpectedCosine computes the expected cosine similarity over possible
// worlds (exact DP with a Monte Carlo fallback for very high degrees).
func ExpectedCosine(g *Graph, u, v int) float64 {
	return simmeasure.ExpectedCosine(g, u, v, simmeasure.CosineOptions{})
}

// ErrorBound returns the Theorem 2 truncation bound |s(n) − s| ≤ c^(n+1).
func ErrorBound(c float64, n int) float64 { return core.ErrorBound(c, n) }

// Index is a precomputed reverse-walk index for one graph generation:
// per-vertex, per-step occupancy distributions of the engine's v-side
// walk streams, built offline and probed at query time through
// Engine.SingleSourceIndexed (index probe + residual sample — the first
// query path whose request cost is independent of per-candidate
// sampling). An Index implements core's SourceIndex and is safe for
// concurrent probes; see usimrank/internal/index for the on-disk
// format, generation semantics, and patch rules.
type Index = index.Index

// BuildIndex runs the offline index pass on e's worker pool: every
// vertex's v-side occupancy rows, stamped with e's graph generation,
// seed, sample count and step depth. Deterministic — bit-identical for
// every Parallelism value. Persist with Index.Write, reload with
// LoadIndexFile.
func BuildIndex(e *Engine) (*Index, error) { return index.Build(e) }

// LoadIndexFile memory-maps and fully validates the index file at path.
// Close the index only after every query probing it has finished.
func LoadIndexFile(path string) (*Index, error) { return index.Load(path) }

// PatchIndex derives the successor generation's index after
// Engine.ApplyUpdates without a full rebuild: succ is the engine
// ApplyUpdates returned, oldG the predecessor's graph, and updates the
// batch. Only vertices within the walk horizon of a touched arc head
// are recomputed; the result is bit-identical to BuildIndex(succ).
// Returns the patched index and the number of recomputed vertices.
func PatchIndex(x *Index, succ *Engine, oldG *Graph, updates []ArcUpdate) (*Index, int, error) {
	return index.Patch(x, succ, oldG, updates)
}

// TopKResult is one scored vertex (or pair) of a top-k query.
type TopKResult = topk.Result

// TopKSimilar returns the k vertices most similar to u under the given
// algorithm (the query of the paper's Fig. 14 case study). With
// AlgBaseline, candidates are pruned with the geometric tail bound of
// the exact measure; the approximate algorithms sweep the engine's
// one-pass single-source kernel, doing u's sampling work once for the
// whole query instead of once per candidate.
func TopKSimilar(e *Engine, alg Algorithm, u, k int) ([]TopKResult, error) {
	return topk.SingleSource(e, alg, u, k)
}

// TopKSimilarCtx is TopKSimilar with cancellation (the serving plane's
// per-request deadlines run through it).
func TopKSimilarCtx(ctx context.Context, e *Engine, alg Algorithm, u, k int) ([]TopKResult, error) {
	return topk.SingleSourceCtx(ctx, e, alg, u, k)
}

// TopKPairs returns the k most similar distinct vertex pairs under the
// given algorithm (the query of the paper's Fig. 13 case study).
// Sources are scored concurrently through the single-source kernels on
// the engine's worker pool; the result is identical to a sequential
// pairwise sweep for every Parallelism value.
func TopKPairs(e *Engine, alg Algorithm, k int) ([]TopKResult, error) {
	return topk.AllPairsParallel(e, alg, k)
}

// TopKPairsCtx is TopKPairs with cancellation.
func TopKPairsCtx(ctx context.Context, e *Engine, alg Algorithm, k int) ([]TopKResult, error) {
	return topk.AllPairsParallelCtx(ctx, e, alg, k)
}

// TopKPairsAmongCtx restricts TopKPairsCtx to pairs whose source (the
// smaller endpoint) is in sources. Partitioning the vertex set,
// querying each part, and merging the partial lists under the
// canonical (score desc, U, V) order reproduces TopKPairs bit for bit
// — the decomposition behind the cluster coordinator's scatter-gather
// top-k.
func TopKPairsAmongCtx(ctx context.Context, e *Engine, alg Algorithm, k int, sources []int) ([]TopKResult, error) {
	return topk.AllPairsSubsetCtx(ctx, e, alg, k, sources)
}

// AdaptiveOptions carries a per-request (ε, δ) accuracy target for the
// adaptive query methods (Engine.AdaptiveCompute and friends): sample
// in geometric rounds, stop as soon as the confidence radius reaches
// Eps.
type AdaptiveOptions = core.AdaptiveOptions

// AdaptiveResult reports an adaptive query's estimate together with
// the achieved radius, walk spend, and convergence state.
type AdaptiveResult = core.AdaptiveResult

// AdaptiveDefaultDelta is the failure probability assumed when an
// adaptive request names only eps.
const AdaptiveDefaultDelta = core.AdaptiveDefaultDelta

// TopKSimilarAdaptiveCtx is TopKSimilar with a per-request accuracy
// target: the single-source sweep behind the ranking runs adaptively,
// so every candidate score is within ±res.Radius of its exact
// possible-world value (with probability ≥ 1−δ) and easy queries stop
// sampling early. res.Scores carries the ranked scores' provenance
// (radius, walks, rounds); Partial marks a ranking computed from a
// deadline-truncated sweep.
func TopKSimilarAdaptiveCtx(ctx context.Context, e *Engine, alg Algorithm, u, k int, ao AdaptiveOptions) ([]TopKResult, AdaptiveResult, error) {
	n := e.Graph().NumVertices()
	candidates := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			candidates = append(candidates, v)
		}
	}
	res, err := e.AdaptiveSingleSourceAgainstCtx(ctx, alg, u, candidates, ao)
	if err != nil {
		return nil, AdaptiveResult{}, err
	}
	list := make([]topk.Result, len(candidates))
	for i, v := range candidates {
		list[i] = topk.Result{U: u, V: v, Score: res.Scores[i]}
	}
	ranked := topk.Merge(k, list)
	res.Scores = nil
	return ranked, res, nil
}

// TopKPairsAdaptiveCtx is TopKPairsAmongCtx (or, with nil sources, the
// full TopKPairs sweep) under a per-request accuracy target. Each
// source's candidate sweep runs adaptively; the aggregate
// AdaptiveResult reports the worst radius, total walks, deepest round
// count, and whether every sweep converged. A deadline that truncates
// one sweep marks the whole ranking Partial and skips the remaining
// sources — the merged list is then a best-effort ranking over the
// sources completed so far.
func TopKPairsAdaptiveCtx(ctx context.Context, e *Engine, alg Algorithm, k int, sources []int, ao AdaptiveOptions) ([]TopKResult, AdaptiveResult, error) {
	n := e.Graph().NumVertices()
	if sources == nil {
		sources = make([]int, n)
		for u := range sources {
			sources[u] = u
		}
	}
	agg := AdaptiveResult{Converged: true}
	lists := make([][]topk.Result, 0, len(sources))
	for _, u := range sources {
		candidates := make([]int, 0, n-u-1)
		for v := u + 1; v < n; v++ {
			candidates = append(candidates, v)
		}
		if len(candidates) == 0 {
			continue
		}
		res, err := e.AdaptiveSingleSourceAgainstCtx(ctx, alg, u, candidates, ao)
		if err != nil {
			return nil, AdaptiveResult{}, err
		}
		list := make([]topk.Result, len(candidates))
		for i, v := range candidates {
			list[i] = topk.Result{U: u, V: v, Score: res.Scores[i]}
		}
		lists = append(lists, topk.Merge(k, list))
		if res.Radius > agg.Radius {
			agg.Radius = res.Radius
		}
		agg.Walks += res.Walks
		if res.Rounds > agg.Rounds {
			agg.Rounds = res.Rounds
		}
		agg.Converged = agg.Converged && res.Converged
		if res.Partial {
			agg.Partial = true
			break
		}
	}
	return topk.Merge(k, lists...), agg, nil
}
